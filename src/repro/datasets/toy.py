"""The paper's worked examples as ready-made datasets.

Two toy instances are provided:

* :func:`load_toy_example` — the 6-vertex instance of the paper's Figure 3
  (Examples 2 and 3): the initiator ``v7`` with five direct friends, the
  social distances of Figure 3(b), and the 7-slot schedules of Figure 3(c).
  The adjacency among the friends is reconstructed from the worked trace in
  Appendix A (which pins it uniquely); the optimal SGQ answer for
  ``p=4, s=1, k=1`` is ``{v2, v3, v4, v7}`` with total distance 62, and the
  optimal STGQ answer for ``m=3`` is ``{v2, v4, v6, v7}`` in period
  ``[ts2, ts4]`` — both asserted by the test-suite.
* :func:`load_movie_network` — the 8-celebrity network of Figure 2
  (Example 1), used by the example scripts.  The figure's exact edge
  weights are not fully recoverable from the text, so the weights here are
  an approximation consistent with the narrative (which friends are
  mutually acquainted, who is closest to the initiator); tests treat it as
  a realistic fixture rather than pinning the paper's literal numbers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..graph.social_graph import SocialGraph
from ..temporal.calendars import CalendarStore
from ..temporal.schedule import Schedule
from .base import Dataset

__all__ = ["load_toy_example", "load_movie_network", "TOY_INITIATOR", "MOVIE_INITIATOR"]

#: Initiator of the Figure-3 toy instance.
TOY_INITIATOR = "v7"

#: Initiator of the Figure-2 celebrity network (Casey Affleck).
MOVIE_INITIATOR = "casey_affleck"


def load_toy_example() -> Dataset:
    """Build the Figure-3 instance (Examples 2 and 3 of the paper)."""
    graph = SocialGraph()
    # Distances from the initiator v7 (Figure 3(b)).
    edges: List[Tuple[str, str, float]] = [
        ("v7", "v2", 17.0),
        ("v7", "v3", 18.0),
        ("v7", "v4", 27.0),
        ("v7", "v6", 23.0),
        ("v7", "v8", 25.0),
        # Adjacency among the friends, reconstructed from the worked trace:
        # v2 has exactly two neighbours among {v3, v4, v6, v8} (v4 and v6),
        # v3 is adjacent to v4 only, v4 is adjacent to v2, v3 and v6, and v8
        # knows nobody but the initiator.  The weights of these edges do not
        # influence any s=1 query; the figure's remaining labels are used.
        ("v2", "v4", 29.0),
        ("v2", "v6", 20.0),
        ("v3", "v4", 19.0),
        ("v4", "v6", 14.0),
    ]
    for u, v, d in edges:
        graph.add_edge(u, v, d)

    # Schedules from Figure 3(c); horizon of 7 slots, circles mark free slots.
    patterns: Dict[str, str] = {
        "v2": "OOOOOOO",
        "v3": ".OO.OO.",
        "v4": "OOOOO.O",
        "v6": ".OOOOOO",
        "v7": "OOOOOO.",
        "v8": "O.O.OO.",
    }
    calendars = CalendarStore(7)
    for person, pattern in patterns.items():
        calendars.set(person, Schedule.from_string(pattern))

    return Dataset(
        name="toy-figure3",
        graph=graph,
        calendars=calendars,
        description="Figure 3 worked example (Examples 2 and 3) of the paper.",
        metadata={"initiator": TOY_INITIATOR, "source": "paper Figure 3"},
    )


def load_movie_network() -> Dataset:
    """Build the Figure-2 celebrity network (Example 1 of the paper).

    Distances approximate the figure: the initiator's three closest contacts
    (George Clooney, Robert De Niro, Michelle Monaghan) are not mutually
    acquainted, while the slightly farther trio (Clooney, Brad Pitt, Julia
    Roberts) forms a clique with the initiator — which is what makes the
    ``k = 0`` query interesting.
    """
    people = {
        "angelina_jolie": "v1",
        "george_clooney": "v2",
        "robert_de_niro": "v3",
        "brad_pitt": "v4",
        "matt_damon": "v5",
        "julia_roberts": "v6",
        "casey_affleck": "v7",
        "michelle_monaghan": "v8",
    }
    graph = SocialGraph(vertices=people)
    edges: List[Tuple[str, str, float]] = [
        # Casey Affleck's direct friends (candidates for s = 1 queries).
        ("casey_affleck", "george_clooney", 12.0),
        ("casey_affleck", "robert_de_niro", 14.0),
        ("casey_affleck", "michelle_monaghan", 17.0),
        ("casey_affleck", "julia_roberts", 24.0),
        ("casey_affleck", "brad_pitt", 28.0),
        # The tight clique used by the k = 0 answer.
        ("george_clooney", "brad_pitt", 10.0),
        ("george_clooney", "julia_roberts", 8.0),
        ("brad_pitt", "julia_roberts", 19.0),
        # Second-hop contacts reachable with s = 2.
        ("angelina_jolie", "brad_pitt", 18.0),
        ("angelina_jolie", "george_clooney", 26.0),
        ("matt_damon", "george_clooney", 20.0),
        ("matt_damon", "brad_pitt", 23.0),
        ("matt_damon", "julia_roberts", 30.0),
        ("robert_de_niro", "brad_pitt", 27.0),
        ("robert_de_niro", "angelina_jolie", 39.0),
        ("michelle_monaghan", "matt_damon", 19.0),
    ]
    for u, v, d in edges:
        graph.add_edge(u, v, d)

    # Schedules follow Figure 2(c): six slots, circles mark availability.
    patterns: Dict[str, str] = {
        "angelina_jolie": ".OOOO.",
        "george_clooney": "OOOOO.",
        "robert_de_niro": ".OOOOO",
        "brad_pitt": "OOOOOO",
        "matt_damon": "O.OOO.",
        "julia_roberts": ".OO.O.",
        "casey_affleck": ".OOOO.",
        "michelle_monaghan": "OOOO.O",
    }
    calendars = CalendarStore(6)
    for person, pattern in patterns.items():
        calendars.set(person, Schedule.from_string(pattern))

    return Dataset(
        name="movie-figure2",
        graph=graph,
        calendars=calendars,
        description="Figure 2 celebrity network (Example 1), approximate weights.",
        metadata={"initiator": MOVIE_INITIATOR, "source": "paper Figure 2 (approximate)"},
    )
