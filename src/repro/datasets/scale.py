"""Seeded scale datasets: 10⁵–10⁶ people on the CSR substrate.

The paper's experiments top out at 12 800 people (the resampled real
dataset) and ~500 000 coauthorship vertices.  The in-memory adjacency-dict
graph handles those, but every process/remote worker holds its own pickled
copy — at 10⁶ vertices that is gigabytes per worker.  This module generates
graphs straight into :class:`~repro.graph.csr.CSRGraph` edge arrays (never
materialising a dict adjacency) and pairs them with a
:class:`~repro.temporal.calendars.LazyCalendarStore`, so a dataset of a
million people costs each worker only the mmap'd ``.stgq`` pages its
queries touch plus the few hundred schedules it materialises.

Degrees follow a power law via the Chung–Lu model: vertex ``i`` receives an
expected-degree weight ``(i + 1)^(-1/(exponent - 1))``, both endpoints of
every edge are drawn from that distribution, and self-loops/duplicates are
discarded.  Identity ids (``0..n-1``) mean vertex ``0`` is the largest hub —
a natural query initiator with a populated ego network.
"""

from __future__ import annotations

import functools
import random
from pathlib import Path
from typing import Optional, Union

from ..exceptions import GraphError
from ..graph.csr import CSRGraph, csr_available, load_stgq
from ..temporal.calendars import LazyCalendarStore
from ..temporal.generators import day_structured_schedule
from ..temporal.schedule import Schedule
from ..temporal.slots import SLOTS_PER_DAY_DEFAULT
from .base import Dataset

try:  # pragma: no cover - exercised indirectly via csr_available()
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

__all__ = ["generate_scale_dataset", "generate_scale_graph", "dataset_from_substrate"]

PathLike = Union[str, Path]

#: Initiator vertex of every scale dataset: the largest Chung–Lu hub.
SCALE_INITIATOR = 0


def _person_schedule(person: int, days: int, slots_per_day: int, seed: int) -> Schedule:
    """Deterministic per-person schedule for the lazy calendar factory.

    Must be a top-level function (workers unpickle it by qualified name) and
    must depend only on its arguments: the per-person stream is seeded by
    composing the dataset seed with the person id, so materialising person
    ``i`` yields the same schedule in every process, in any order.  The
    per-person busyness spread mirrors
    :func:`~repro.temporal.generators.generate_calendar_store`.
    """
    rng = random.Random((int(seed) << 32) ^ (int(person) + 1))
    work_free = min(0.95, max(0.1, rng.gauss(0.45, 0.15)))
    evening_free = min(0.98, max(0.2, rng.gauss(0.75, 0.12)))
    return day_structured_schedule(
        days=days,
        slots_per_day=slots_per_day,
        evening_free_prob=evening_free,
        work_free_prob=work_free,
        rng=rng,
    )


def _lazy_calendars(
    population, days: int, slots_per_day: int, seed: int
) -> LazyCalendarStore:
    factory = functools.partial(
        _person_schedule, days=days, slots_per_day=slots_per_day, seed=seed
    )
    return LazyCalendarStore(days * slots_per_day, population, factory)


def generate_scale_graph(
    n_people: int,
    mean_degree: float = 8.0,
    exponent: float = 2.5,
    seed: int = 7,
    initiator_min_degree: int = 16,
) -> CSRGraph:
    """Generate a Chung–Lu power-law graph directly as a :class:`CSRGraph`.

    Parameters
    ----------
    n_people:
        Number of vertices (ids ``0..n_people - 1``).
    mean_degree:
        Target average degree; the realised value is slightly lower because
        self-loops and duplicate draws are discarded.
    exponent:
        Power-law exponent of the degree distribution (typical social
        networks sit in ``2 < exponent < 3``).
    seed:
        Seed for the numpy generator; same seed, same graph, byte for byte.
    initiator_min_degree:
        Floor on the degree of vertex ``0`` so the default initiator always
        has a usable ego network (edges to the lowest-id non-neighbours are
        added if the random draw fell short).
    """
    if not csr_available():  # pragma: no cover - numpy present in CI legs using this
        raise GraphError("scale datasets require numpy (CSR substrate unavailable)")
    if n_people < 2:
        raise GraphError(f"n_people must be >= 2, got {n_people}")
    if mean_degree <= 0:
        raise GraphError(f"mean_degree must be positive, got {mean_degree}")
    if exponent <= 1.0:
        raise GraphError(f"exponent must be > 1, got {exponent}")

    rng = np.random.default_rng(seed)
    n = int(n_people)
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-1.0 / (exponent - 1.0))
    p = weights / weights.sum()

    target = int(n * mean_degree / 2)
    # Oversample: self-loops and duplicates eat a fraction of the draws.
    draw = int(target * 1.35) + 16
    u = rng.choice(n, size=draw, p=p)
    v = rng.choice(n, size=draw, p=p)
    keep = u != v
    lo = np.minimum(u[keep], v[keep]).astype(np.int64)
    hi = np.maximum(u[keep], v[keep]).astype(np.int64)
    codes = np.unique(lo * np.int64(n) + hi)
    if len(codes) > target:
        chosen = rng.choice(len(codes), size=target, replace=False)
        codes = codes[np.sort(chosen)]
    lo = codes // n
    hi = codes % n

    # Degree floor for the initiator hub.
    deg0 = int(np.count_nonzero(lo == 0))
    floor = min(initiator_min_degree, n - 1)
    if deg0 < floor:
        have = set(hi[lo == 0].tolist())
        extra = [j for j in range(1, n) if j not in have][: floor - deg0]
        if extra:
            codes = np.unique(
                np.concatenate([lo * np.int64(n) + hi, np.asarray(extra, dtype=np.int64)])
            )
            lo = codes // n
            hi = codes % n

    # Social distances from a heavy-tailed interaction-frequency proxy:
    # frequent contacts are close, the long tail sits near the 30.0 cap.
    freq = rng.lognormal(mean=1.0, sigma=1.0, size=len(lo))
    dist = 30.0 / (1.0 + np.log1p(freq))
    return CSRGraph.from_edge_arrays(n, lo, hi, dist)


def generate_scale_dataset(
    n_people: int,
    mean_degree: float = 8.0,
    exponent: float = 2.5,
    schedule_days: int = 1,
    slots_per_day: int = SLOTS_PER_DAY_DEFAULT,
    seed: int = 7,
) -> Dataset:
    """Generate a scale dataset: CSR power-law graph + lazy calendars.

    Deterministic for a given parameter set; the graph can be persisted with
    :func:`~repro.graph.csr.pack_graph` and re-opened memory-mapped via
    :func:`dataset_from_substrate`.
    """
    graph = generate_scale_graph(
        n_people, mean_degree=mean_degree, exponent=exponent, seed=seed
    )
    calendars = _lazy_calendars(range(graph.vertex_count), schedule_days, slots_per_day, seed)
    return Dataset(
        name=f"scale-{n_people}",
        graph=graph,
        calendars=calendars,
        description=(
            f"Chung-Lu power-law graph over {n_people} people "
            f"(exponent {exponent}, target mean degree {mean_degree}) with "
            f"lazily materialised day-structured calendars"
        ),
        metadata={
            "initiator": SCALE_INITIATOR,
            "seed": seed,
            "mean_degree_target": mean_degree,
            "exponent": exponent,
            "schedule_days": schedule_days,
        },
    )


def dataset_from_substrate(
    path: PathLike,
    schedule_days: int = 1,
    slots_per_day: int = SLOTS_PER_DAY_DEFAULT,
    seed: int = 7,
    mmap: bool = True,
    name: Optional[str] = None,
) -> Dataset:
    """Open a packed ``.stgq`` substrate file as a ready-to-serve dataset.

    The graph arrays are memory-mapped (``mmap=True``), so N workers opening
    the same file share one set of page-cache pages instead of N pickled
    copies; calendars are seeded lazily per person exactly as
    :func:`generate_scale_dataset` does.
    """
    path = Path(path)
    graph = load_stgq(path, mmap=mmap)
    population = range(graph.vertex_count) if graph.identity_ids else graph.vertices()
    calendars = _lazy_calendars(population, schedule_days, slots_per_day, seed)
    initiator = population[0] if len(population) else None
    return Dataset(
        name=name or f"substrate-{path.stem}",
        graph=graph,
        calendars=calendars,
        description=f"mmap-backed CSR substrate loaded from {path}",
        metadata={
            "initiator": initiator,
            "seed": seed,
            "graph_path": str(path),
            "graph_version": graph.version,
            "schedule_days": schedule_days,
        },
    )
