"""Datasets: the paper's worked examples plus synthetic stand-ins for its
real and coauthorship datasets (see DESIGN.md §4 for the substitutions)."""

from .base import Dataset
from .coauthorship import NETWORK_SIZE_SWEEP, generate_coauthorship_dataset
from .realistic import REAL_DATASET_SIZE, generate_real_dataset
from .scale import SCALE_INITIATOR, dataset_from_substrate, generate_scale_dataset, generate_scale_graph
from .toy import MOVIE_INITIATOR, TOY_INITIATOR, load_movie_network, load_toy_example

__all__ = [
    "Dataset",
    "load_toy_example",
    "load_movie_network",
    "TOY_INITIATOR",
    "MOVIE_INITIATOR",
    "generate_real_dataset",
    "REAL_DATASET_SIZE",
    "generate_coauthorship_dataset",
    "NETWORK_SIZE_SWEEP",
    "generate_scale_dataset",
    "generate_scale_graph",
    "dataset_from_substrate",
    "SCALE_INITIATOR",
]
