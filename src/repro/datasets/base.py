"""Common dataset container.

A *dataset* in this reproduction is a social graph plus a calendar store
plus descriptive metadata — everything a query needs.  The three concrete
datasets (toy, realistic-194, coauthorship) all return :class:`Dataset`
instances so the experiment harness can treat them interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..graph.substrate import GraphSubstrate
from ..temporal.calendars import CalendarStore
from ..types import Vertex

__all__ = ["Dataset"]


@dataclass
class Dataset:
    """A social graph, its calendars, and metadata about how it was built.

    ``graph`` is any :class:`~repro.graph.substrate.GraphSubstrate` — the
    adjacency-dict :class:`~repro.graph.social_graph.SocialGraph` for the
    paper-scale datasets, the mmap-backed
    :class:`~repro.graph.csr.CSRGraph` for the scale datasets.
    """

    name: str
    graph: GraphSubstrate
    calendars: CalendarStore
    description: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def people(self) -> List[Vertex]:
        """Everyone in the social graph."""
        return self.graph.vertices()

    def initiator_candidates(self, min_degree: int) -> List[Vertex]:
        """People with at least ``min_degree`` friends — sensible query initiators."""
        return [v for v in self.graph.vertices() if self.graph.degree(v) >= min_degree]

    def summary(self) -> Dict[str, object]:
        """Compact description used by the experiment reports."""
        return {
            "name": self.name,
            "people": self.graph.vertex_count,
            "friendships": self.graph.edge_count,
            "horizon_slots": self.calendars.horizon,
            **self.metadata,
        }
