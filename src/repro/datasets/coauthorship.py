"""Synthetic stand-in for the paper's 12 800-person coauthorship dataset.

Figure 1(d) of the paper scales the network from 194 to 12 800 people; the
larger networks were "generated from a coauthorship network" with schedules
resampled daily from the 194-person real dataset.  The public source is not
redistributable here, so :func:`generate_coauthorship_dataset` builds a
coauthorship-style graph (dense small blocks plus a preferential-attachment
backbone) at the requested size and resamples schedules from the synthetic
194-person pool, exactly mirroring the paper's construction recipe.
"""

from __future__ import annotations

from typing import Optional

from ..graph.generators import coauthorship_style_network, ensure_connected_to
from ..temporal.generators import resample_calendar_store
from ..temporal.slots import SLOTS_PER_DAY_DEFAULT
from .base import Dataset
from .realistic import generate_real_dataset

__all__ = ["generate_coauthorship_dataset", "NETWORK_SIZE_SWEEP"]

#: Network sizes used in the paper's Figure 1(d).
NETWORK_SIZE_SWEEP = (194, 800, 3200, 12800)


def generate_coauthorship_dataset(
    n_people: int = 12800,
    schedule_days: int = 1,
    slots_per_day: int = SLOTS_PER_DAY_DEFAULT,
    seed: int = 1234,
    initiator_min_degree: Optional[int] = 16,
) -> Dataset:
    """Generate a coauthorship-style dataset of ``n_people`` people.

    Schedules are resampled per person per day from a freshly generated
    194-person pool (same recipe as the paper).
    """
    graph = coauthorship_style_network(n_people=n_people, seed=seed)
    if initiator_min_degree is not None and n_people > initiator_min_degree:
        ensure_connected_to(graph, hub=0, min_degree=initiator_min_degree, seed=seed + 1)

    source = generate_real_dataset(
        schedule_days=max(1, schedule_days),
        slots_per_day=slots_per_day,
        seed=seed + 2,
    )
    calendars = resample_calendar_store(
        graph.vertices(),
        source=source.calendars,
        days=schedule_days,
        slots_per_day=slots_per_day,
        seed=seed + 3,
    )
    return Dataset(
        name=f"coauthorship-{n_people}",
        graph=graph,
        calendars=calendars,
        description=(
            "Coauthorship-style synthetic network with schedules resampled from the "
            "194-person pool (paper Figure 1(d) construction)."
        ),
        metadata={
            "initiator": 0,
            "seed": seed,
            "schedule_days": schedule_days,
            "slots_per_day": slots_per_day,
        },
    )
