"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so the package can be installed in environments whose setuptools predates
PEP 660 editable installs (``pip install -e . --no-build-isolation`` falls
back to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
