"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_query_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["query", "-p", "5", "-k", "2", "-m", "4"])
        assert args.command == "query"
        assert args.group_size == 5
        assert args.acquaintance == 2
        assert args.activity_length == 4

    def test_figure_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["figure", "1e", "--scale", "smoke", "--csv"])
        assert args.command == "figure"
        assert args.panel == "1e"
        assert args.csv

    def test_unknown_panel_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["figure", "9x"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_serve_remote_arguments(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--backend", "remote", "--connect", "127.0.0.1:9001,127.0.0.1:9002",
             "--timeout", "5"]
        )
        assert args.backend == "remote"
        assert args.connect == "127.0.0.1:9001,127.0.0.1:9002"
        assert args.timeout == 5.0

    def test_worker_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["worker", "--listen", "0.0.0.0:9100", "--people", "60"])
        assert args.command == "worker"
        assert args.listen == ("0.0.0.0", 9100)
        assert args.backend == "serial"

    def test_worker_bad_listen_rejected(self):
        parser = build_parser()
        for bad in ("nohost", "host:notaport", ":123"):
            with pytest.raises(SystemExit):
                parser.parse_args(["worker", "--listen", bad])

    def test_cluster_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["cluster", "--workers", "3", "--queries", "10"])
        assert args.command == "cluster"
        assert args.workers == 3
        assert args.worker_backend == "serial"
        assert args.queries == 10

    def test_serve_remote_requires_connect(self, capsys):
        code = main(["serve", "--backend", "remote", "--queries", "1", "--people", "40"])
        assert code == 2  # usage error, argparse-style, not a traceback
        assert "--connect" in capsys.readouterr().err


class TestCommands:
    def test_sgq_query_runs(self, capsys):
        code = main(
            ["query", "-p", "3", "-k", "2", "--people", "60", "--seed", "3"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "group (sgselect):" in out
        assert "total social distance" in out

    def test_stgq_query_runs(self, capsys):
        code = main(
            [
                "query",
                "-p",
                "3",
                "-k",
                "2",
                "-m",
                "2",
                "--people",
                "60",
                "--seed",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert code in (0, 1)
        if code == 0:
            assert "activity period" in out

    def test_query_with_explicit_algorithm(self, capsys):
        code = main(
            ["query", "-p", "3", "-k", "2", "--algorithm", "baseline", "--people", "60", "--seed", "3"]
        )
        assert code == 0
        assert "baseline" in capsys.readouterr().out

    def test_figure_table_output(self, capsys):
        code = main(["figure", "1g", "--scale", "smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "STGArrange" in out

    def test_figure_csv_output(self, capsys):
        code = main(["figure", "1b", "--scale", "smoke", "--csv"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("figure,sweep_name")

    def test_ablation_command(self, capsys):
        code = main(["ablation", "-p", "4", "-k", "2", "--people", "60", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no-distance-pruning" in out

    def test_serve_sgq_batch(self, capsys):
        code = main(
            ["serve", "--queries", "12", "--initiators", "4", "--people", "60",
             "--seed", "3", "-p", "4", "-k", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "12 SGQ queries" in out
        assert "queries/s" in out
        assert "hit rate" in out

    def test_cluster_batch_end_to_end(self, capsys):
        # One worker subprocess + gateway: covers spawn, READY handshake,
        # remote solving, summary output and graceful worker teardown.
        code = main(
            ["cluster", "--workers", "1", "--queries", "8", "--initiators", "4",
             "--people", "40", "--seed", "3", "-p", "3", "-k", "1"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "8 SGQ queries" in captured.out
        assert "backend=remote" in captured.out
        assert "errors" not in captured.out.splitlines()[1]  # no degraded requests
        assert "cluster workers terminated" in captured.err

    def test_serve_stgq_batch_reference_kernel(self, capsys):
        code = main(
            ["serve", "--queries", "6", "--initiators", "3", "--people", "60",
             "--seed", "3", "-p", "3", "-k", "2", "-m", "2",
             "--kernel", "reference", "--workers", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "6 STGQ queries" in out
        assert "kernel=reference" in out

    def test_serve_process_backend(self, capsys):
        code = main(
            ["serve", "--queries", "10", "--initiators", "4", "--people", "60",
             "--seed", "3", "-p", "4", "-k", "2",
             "--backend", "process", "--workers", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "backend=process" in out
        assert "10 SGQ queries" in out

    def test_serve_serial_backend(self, capsys):
        code = main(
            ["serve", "--queries", "6", "--initiators", "3", "--people", "60",
             "--seed", "3", "-p", "4", "-k", "2", "--backend", "serial"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "backend=serial" in out

    def test_serve_jsonl_loop(self, capsys, monkeypatch):
        import io
        import json

        requests = "\n".join(
            json.dumps({"id": i, "initiator": i, "p": 3, "k": 1}) for i in range(4)
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(requests + "\n"))
        code = main(["serve", "--people", "60", "--seed", "3", "--jsonl", "--batch-size", "2"])
        captured = capsys.readouterr()
        assert code == 0
        responses = [json.loads(line) for line in captured.out.splitlines()]
        assert [r["id"] for r in responses] == [0, 1, 2, 3]
        assert all("feasible" in r or "error" in r for r in responses)
        assert "served 4 requests" in captured.err

    def test_serve_backend_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--backend", "gpu"])


class TestStatsCommand:
    def test_stats_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["stats", "--connect", "127.0.0.1:9001,127.0.0.1:9002"])
        assert args.command == "stats"
        assert args.connect == "127.0.0.1:9001,127.0.0.1:9002"
        assert args.timeout == 5.0
        assert not args.json

    def test_stats_requires_connect(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["stats"])

    def test_stats_bad_address_is_usage_error(self, capsys):
        code = main(["stats", "--connect", "no-port"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error" in captured.err

    def test_stats_against_live_worker(self, capsys):
        from repro.core import SGQuery
        from repro.experiments.workloads import workload

        from .service.test_net import WorkerHarness

        dataset = workload(network_size=60, schedule_days=1, seed=7)
        harness = WorkerHarness(dataset).start()
        try:
            harness.service.solve(
                SGQuery(initiator=dataset.people[0], group_size=3, radius=1, acquaintance=1)
            )
            code = main(["stats", "--connect", harness.address])
            captured = capsys.readouterr()
            assert code == 0
            assert f"worker {harness.address}" in captured.out
            assert "queries:      1" in captured.out
            assert "cache:" in captured.out

            json_code = main(["stats", "--connect", harness.address, "--json"])
            json_out = capsys.readouterr().out
        finally:
            harness.stop()
        import json

        assert json_code == 0
        payload = json.loads(json_out)
        assert payload["worker"] == harness.address
        assert payload["stats"]["queries"] == 1
        assert payload["cache"]["misses"] == 1

    def test_stats_unreachable_worker_exits_nonzero(self, capsys):
        code = main(["stats", "--connect", "127.0.0.1:1", "--timeout", "0.2"])
        captured = capsys.readouterr()
        assert code == 1
        assert "UNREACHABLE" in captured.err


class TestSubstrateParser:
    def test_pack_arguments(self):
        args = build_parser().parse_args(["pack", "edges.txt", "out.stgq"])
        assert args.command == "pack"
        assert args.edgelist == "edges.txt"
        assert args.output == "out.stgq"

    def test_pack_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["pack", "edges.txt"])

    def test_inspect_arguments(self):
        args = build_parser().parse_args(["inspect", "g.stgq", "--json"])
        assert args.command == "inspect"
        assert args.file == "g.stgq"
        assert args.json

    def test_serve_and_worker_accept_graph(self):
        parser = build_parser()
        assert parser.parse_args(["serve", "--graph", "g.stgq"]).graph == "g.stgq"
        assert parser.parse_args(["worker", "--graph", "g.stgq"]).graph == "g.stgq"
        assert parser.parse_args(["serve"]).graph is None


class TestSubstrateCommands:
    """pack/inspect round trips and error paths, plus serve --graph."""

    @pytest.fixture(autouse=True)
    def _needs_numpy(self):
        from repro.graph import csr_available

        if not csr_available():
            pytest.skip("CSR substrate needs numpy")

    @pytest.fixture
    def edgelist(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# tiny SNAP-style file\n0 1 1.5\n1 2\n2 0 2.0\n2 2\n")
        return path

    def test_pack_then_inspect(self, edgelist, tmp_path, capsys):
        out = tmp_path / "g.stgq"
        code = main(["pack", str(edgelist), str(out)])
        pack_out = capsys.readouterr().out
        assert code == 0
        assert "packed 3 vertices / 3 edges" in pack_out
        assert "version:" in pack_out
        assert out.exists()

        code = main(["inspect", str(out)])
        inspect_out = capsys.readouterr().out
        assert code == 0
        assert "vertices:   3" in inspect_out
        assert "edges:      3" in inspect_out
        assert "version:" in inspect_out

    def test_inspect_json(self, edgelist, tmp_path, capsys):
        import json

        out = tmp_path / "g.stgq"
        assert main(["pack", str(edgelist), str(out)]) == 0
        capsys.readouterr()
        code = main(["inspect", str(out), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["n"] == 3
        assert payload["m"] == 3
        assert payload["format"] == 1

    def test_pack_quantize_then_inspect(self, edgelist, tmp_path, capsys):
        import json

        out = tmp_path / "q.stgq"
        code = main(["pack", str(edgelist), str(out), "--quantize"])
        pack_out = capsys.readouterr().out
        assert code == 0
        assert "int32-quantized" in pack_out

        code = main(["inspect", str(out)])
        inspect_out = capsys.readouterr().out
        assert code == 0
        assert "int32-quantized" in inspect_out

        assert main(["inspect", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == 2
        assert payload["quantized"] is True
        assert payload["weight_scale"] > 0

    def test_pack_missing_input(self, tmp_path, capsys):
        code = main(["pack", str(tmp_path / "nope.txt"), str(tmp_path / "g.stgq")])
        assert code == 1
        assert "cannot read" in capsys.readouterr().err

    def test_pack_dirty_input_reports_line(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("0 1 1.0\nalpha 2 1.0\n")
        code = main(["pack", str(bad), str(tmp_path / "g.stgq")])
        assert code == 1
        assert "line 2" in capsys.readouterr().err

    def test_inspect_junk_file(self, tmp_path, capsys):
        junk = tmp_path / "junk.stgq"
        junk.write_bytes(b"not a substrate")
        code = main(["inspect", str(junk)])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_serve_over_packed_substrate(self, tmp_path, capsys):
        from repro.datasets import generate_real_dataset
        from repro.graph.csr import pack_graph

        dataset = generate_real_dataset(n_people=60, seed=3)
        out = tmp_path / "g.stgq"
        pack_graph(dataset.graph, out)
        code = main(
            ["serve", "--graph", str(out), "--queries", "6", "--initiators", "3",
             "--seed", "3", "-p", "3", "-k", "2", "--backend", "serial"]
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "6 SGQ queries" in captured
        assert "queries/s" in captured

    def test_serve_missing_substrate_exits_two(self, tmp_path, capsys):
        code = main(["serve", "--graph", str(tmp_path / "nope.stgq"), "--queries", "1"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestMutateCommand:
    def test_mutate_arguments(self):
        parser = build_parser()
        args = parser.parse_args(
            ["mutate", "--count", "8", "--trace-seed", "3", "--batch-size", "2"]
        )
        assert args.command == "mutate"
        assert args.count == 8
        assert args.trace_seed == 3
        assert args.batch_size == 2
        assert args.connect is None

    def test_mutate_local_run(self, capsys):
        code = main(
            ["mutate", "--people", "60", "--seed", "3", "--count", "12",
             "--trace-seed", "7", "--batch-size", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "generated 12 mutations" in out
        assert "applied 12 mutations in 3 batches -> live version 12" in out
        assert "targeted invalidation" in out

    def test_mutate_save_then_replay_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        assert main(
            ["mutate", "--people", "60", "--seed", "3", "--count", "6",
             "--save", str(trace_path)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["mutate", "--people", "60", "--seed", "3", "--trace", str(trace_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"loaded 6 mutations from {trace_path}" in out
        assert "live version 6" in out

    def test_mutate_unreadable_trace_exits_one(self, tmp_path, capsys):
        code = main(
            ["mutate", "--people", "60", "--seed", "3",
             "--trace", str(tmp_path / "missing.jsonl")]
        )
        assert code == 1
        assert "cannot load trace" in capsys.readouterr().err


class TestPlaceCommand:
    @staticmethod
    def _write_trace(tmp_path, skew=1.8):
        from repro.experiments.workloads import (
            generate_query_workload,
            save_workload,
            workload,
        )

        dataset = workload(network_size=60, schedule_days=1, seed=3)
        queries = generate_query_workload(
            dataset, 40, skew=skew, n_initiators=6, radii=(1,), seed=5
        )
        trace_path = tmp_path / "trace.jsonl"
        save_workload(queries, trace_path)
        return trace_path

    def test_place_arguments(self):
        parser = build_parser()
        args = parser.parse_args(
            ["place", "trace.jsonl", "--workers", "4", "--replicas", "3",
             "--ring-seed", "9", "--map-version", "2", "-o", "placement.json"]
        )
        assert args.command == "place"
        assert args.trace == "trace.jsonl"
        assert args.workers == 4
        assert args.replicas == 3
        assert args.ring_seed == 9
        assert args.map_version == 2
        assert args.output == "placement.json"

    def test_place_requires_workers(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["place", "trace.jsonl"])

    def test_place_writes_loadable_map(self, tmp_path, capsys):
        from repro.service import load_placement

        trace_path = self._write_trace(tmp_path)
        out_path = tmp_path / "placement.json"
        code = main(
            ["place", str(trace_path), "--workers", "2", "--map-version", "4",
             "-o", str(out_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "placement:  version 4 over 2 workers" in out
        assert "load shares (trace replay):" in out
        assert "crc32 fallback" in out
        assert f"wrote {out_path}" in out
        placement = load_placement(out_path)
        assert placement.version == 4
        assert placement.n_shards == 2

    def test_place_json_report(self, tmp_path, capsys):
        import json

        trace_path = self._write_trace(tmp_path)
        code = main(["place", str(trace_path), "--workers", "2", "--json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["queries"] == 40
        assert report["map"]["n_shards"] == 2
        assert len(report["load_shares"]) == 2
        assert report["imbalance"] <= report["crc32_imbalance"]
        assert report["threshold"] == 1.5

    def test_place_missing_trace_exits_one(self, tmp_path, capsys):
        code = main(["place", str(tmp_path / "missing.jsonl"), "--workers", "2"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_serve_placement_needs_routing_backend(self, tmp_path, capsys):
        trace_path = self._write_trace(tmp_path)
        out_path = tmp_path / "placement.json"
        assert main(
            ["place", str(trace_path), "--workers", "2", "-o", str(out_path)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["serve", "--backend", "serial", "--placement", str(out_path),
             "--queries", "1", "--people", "40"]
        )
        assert code == 2
        assert "--placement" in capsys.readouterr().err

    def test_replicas_requires_placement(self, capsys):
        code = main(
            ["serve", "--backend", "process", "--replicas", "2",
             "--queries", "1", "--people", "40"]
        )
        assert code == 2
        assert "--replicas requires --placement" in capsys.readouterr().err
