"""Property-based tests (hypothesis) for the core data structures and the
optimality/soundness invariants of the solvers."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    BaselineSGQ,
    BaselineSTGQ,
    SGQuery,
    SGSelect,
    STGQuery,
    STGSelect,
    check_sg_solution,
    check_stg_solution,
    observed_acquaintance,
)
from repro.graph import SocialGraph, bounded_distances, extract_feasible_graph, is_kplex
from repro.temporal import CalendarStore, Schedule, candidate_periods, pivot_slots

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------


@st.composite
def social_graphs(draw, min_vertices=4, max_vertices=9):
    """Random small social graphs containing vertex 0 (the initiator)."""
    n = draw(st.integers(min_vertices, max_vertices))
    graph = SocialGraph(vertices=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                graph.add_edge(u, v, draw(st.integers(1, 15)))
    return graph


@st.composite
def calendars_for(draw, people, min_horizon=4, max_horizon=10):
    horizon = draw(st.integers(min_horizon, max_horizon))
    store = CalendarStore(horizon)
    for person in people:
        slots = draw(
            st.lists(st.integers(1, horizon), unique=True, max_size=horizon)
        )
        store.set(person, Schedule(horizon, slots))
    return store


schedule_bits = st.lists(st.booleans(), min_size=1, max_size=24)


# ----------------------------------------------------------------------
# substrate invariants
# ----------------------------------------------------------------------
class TestScheduleProperties:
    @given(schedule_bits)
    def test_available_plus_busy_covers_horizon(self, bits):
        horizon = len(bits)
        sched = Schedule(horizon, [i + 1 for i, b in enumerate(bits) if b])
        assert sorted(sched.available_slots() + sched.busy_slots()) == list(range(1, horizon + 1))

    @given(schedule_bits)
    def test_runs_partition_available_slots(self, bits):
        horizon = len(bits)
        sched = Schedule(horizon, [i + 1 for i, b in enumerate(bits) if b])
        covered = []
        for run in sched.available_runs():
            covered.extend(list(run))
        assert covered == sched.available_slots()
        # Runs are maximal: consecutive runs are separated by a busy slot.
        runs = sched.available_runs()
        for first, second in zip(runs, runs[1:]):
            assert second.start - first.end >= 2

    @given(schedule_bits, schedule_bits)
    def test_intersection_is_commutative_and_subset(self, bits_a, bits_b):
        horizon = max(len(bits_a), len(bits_b))
        a = Schedule(horizon, [i + 1 for i, b in enumerate(bits_a) if b])
        b = Schedule(horizon, [i + 1 for i, bit in enumerate(bits_b) if bit])
        ab = a.intersect(b)
        ba = b.intersect(a)
        assert ab == ba
        assert set(ab.available_slots()) <= set(a.available_slots())
        assert set(ab.available_slots()) <= set(b.available_slots())

    @given(schedule_bits, st.integers(1, 6))
    def test_free_windows_are_actually_free(self, bits, length):
        horizon = len(bits)
        sched = Schedule(horizon, [i + 1 for i, b in enumerate(bits) if b])
        for window in sched.free_windows(length):
            assert len(window) == length
            assert sched.is_available_range(window)


class TestPivotProperties:
    @given(st.integers(1, 40), st.integers(1, 8))
    def test_every_period_contains_exactly_one_pivot(self, horizon, m):
        if m > horizon:
            return
        pivots = set(pivot_slots(horizon, m))
        for period in candidate_periods(horizon, m):
            assert sum(1 for slot in period if slot in pivots) == 1


class TestDistanceProperties:
    @given(social_graphs(), st.integers(1, 4))
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_bounded_distances_monotone_and_triangle(self, graph, radius):
        d_small = bounded_distances(graph, 0, radius)
        d_big = bounded_distances(graph, 0, radius + 1)
        # Reachable-only maps: a looser bound reaches a superset of vertices
        # and never increases a distance.
        assert set(d_small) <= set(d_big)
        for v in graph:
            assert d_big.get(v, math.inf) <= d_small.get(v, math.inf)
        # Direct edges bound the one-hop distance from above.
        for v, c in graph.adjacency(0).items():
            assert d_small[v] <= c

    @given(social_graphs(), st.integers(1, 3))
    @settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_feasible_graph_members_are_reachable(self, graph, radius):
        feasible = extract_feasible_graph(graph, 0, radius)
        distances = bounded_distances(graph, 0, radius)
        for v in feasible.graph.vertices():
            assert distances[v] < math.inf
            assert feasible.distance(v) == distances[v]


# ----------------------------------------------------------------------
# solver invariants
# ----------------------------------------------------------------------
class TestSGSelectProperties:
    @given(social_graphs(), st.integers(2, 4), st.integers(1, 2), st.integers(0, 2))
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_optimality_against_bruteforce(self, graph, p, s, k):
        query = SGQuery(0, p, s, k)
        fast = SGSelect(graph).solve(query)
        slow = BaselineSGQ(graph).solve(query)
        assert fast.matches(slow)

    @given(social_graphs(), st.integers(2, 4), st.integers(1, 2), st.integers(0, 2))
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_solutions_satisfy_all_constraints(self, graph, p, s, k):
        query = SGQuery(0, p, s, k)
        result = SGSelect(graph).solve(query)
        if result.feasible:
            report = check_sg_solution(graph, query, result.members)
            assert report.ok
            assert result.total_distance == report.total_distance
            assert observed_acquaintance(graph, result.members) <= k
            assert is_kplex(graph, result.members, k)

    @given(social_graphs(), st.integers(2, 4), st.integers(1, 2))
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_relaxing_k_never_hurts(self, graph, p, s):
        """The optimal distance is monotonically non-increasing in k."""
        distances = []
        for k in range(0, p):
            result = SGSelect(graph).solve(SGQuery(0, p, s, k))
            distances.append(result.total_distance)
        for tighter, looser in zip(distances, distances[1:]):
            assert looser <= tighter


class TestSTGSelectProperties:
    @given(st.data())
    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_optimality_and_feasibility(self, data):
        graph = data.draw(social_graphs(max_vertices=8))
        calendars = data.draw(calendars_for(graph.vertices()))
        p = data.draw(st.integers(2, 4))
        k = data.draw(st.integers(0, 2))
        m = data.draw(st.integers(1, min(3, calendars.horizon)))
        query = STGQuery(0, p, 2, k, m)
        fast = STGSelect(graph, calendars).solve(query)
        slow = BaselineSTGQ(graph, calendars, inner="bruteforce").solve(query)
        assert fast.matches(slow)
        if fast.feasible:
            report = check_stg_solution(graph, calendars, query, fast.members, fast.period)
            assert report.ok

    @given(st.data())
    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_stgq_never_beats_sgq(self, data):
        """Adding the availability constraint can only increase the optimum."""
        graph = data.draw(social_graphs(max_vertices=8))
        calendars = data.draw(calendars_for(graph.vertices()))
        p = data.draw(st.integers(2, 4))
        k = data.draw(st.integers(0, 2))
        m = data.draw(st.integers(1, min(3, calendars.horizon)))
        sg = SGSelect(graph).solve(SGQuery(0, p, 2, k))
        stg = STGSelect(graph, calendars).solve(STGQuery(0, p, 2, k, m))
        if stg.feasible:
            assert sg.feasible
            assert stg.total_distance >= sg.total_distance - 1e-9
