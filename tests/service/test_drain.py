"""Drained-shutdown regression tests: the PR 8 SIGTERM contract.

One contract, three servers: **stop accepting, answer what you accepted,
exit 0.**  This module covers the shared primitives
(:class:`ShutdownSignal`, :func:`wait_for_drain`), the JSONL loop (lines
already pulled off stdin get answers before exit) and the asyncio worker
(an in-flight batch frame's reply is written before connections close).
The HTTP gateway's drain is covered in ``test_http.py``.
"""

import asyncio
import io
import json
import os
import signal
import threading
import time

import pytest

from repro.core import SGQuery
from repro.service import QueryService, ShutdownSignal, serve_jsonl, wait_for_drain
from repro.service.codec import request_for
from repro.service.jsonl import _RequestReader
from repro.service.net.protocol import recv_frame, send_frame

from ..conftest import make_random_calendars, make_random_graph
from .test_net import WorkerHarness, _client_socket


@pytest.fixture(scope="module")
def dataset():
    graph = make_random_graph(7, n=14, edge_prob=0.4)
    calendars = make_random_calendars(11, list(graph), horizon=12, availability=0.6)

    class _Dataset:
        pass

    bundle = _Dataset()
    bundle.graph = graph
    bundle.calendars = calendars
    return bundle


# ----------------------------------------------------------------------
# primitives
# ----------------------------------------------------------------------
class TestShutdownSignal:
    def test_real_signal_sets_triggered_without_raising(self):
        stop = ShutdownSignal()
        previous = signal.getsignal(signal.SIGTERM)
        with stop:
            assert not stop.triggered
            signal.raise_signal(signal.SIGTERM)
            assert stop.triggered
            assert stop.signum == signal.SIGTERM
        # uninstall restored whatever was there before
        assert signal.getsignal(signal.SIGTERM) is previous

    def test_trigger_and_wait(self):
        stop = ShutdownSignal()
        assert not stop.wait(timeout=0.01)
        stop.trigger()
        assert stop.wait(timeout=0.01)
        assert stop.triggered

    def test_exit_code_is_zero_for_drained_shutdown(self):
        stop = ShutdownSignal()
        assert stop.exit_code() == 0
        stop.trigger()
        assert stop.exit_code() == 0

    def test_uninstall_idempotent(self):
        stop = ShutdownSignal().install()
        stop.uninstall()
        stop.uninstall()


class TestWaitForDrain:
    def test_already_drained(self):
        assert wait_for_drain(lambda: 0, timeout=0.1)

    def test_drains_while_waiting(self):
        count = [3]

        def probe():
            count[0] -= 1
            return count[0]

        assert wait_for_drain(probe, timeout=5.0, poll=0.001)

    def test_timeout_reports_failure(self):
        start = time.monotonic()
        assert not wait_for_drain(lambda: 1, timeout=0.1, poll=0.01)
        assert time.monotonic() - start < 2.0


# ----------------------------------------------------------------------
# JSONL loop
# ----------------------------------------------------------------------
def _request_line(i, initiator=0):
    return (
        json.dumps({"id": i, "initiator": initiator, "group_size": 3, "radius": 2, "k": 1})
        + "\n"
    )


class TestJsonlDrain:
    def test_reader_drain_returns_accepted_lines(self):
        read_fd, write_fd = os.pipe()
        writer = os.fdopen(write_fd, "w")
        stream = os.fdopen(read_fd, "r")
        try:
            reader = _RequestReader(stream)
            writer.write(_request_line(1) + _request_line(2) + _request_line(3))
            writer.flush()
            deadline = time.monotonic() + 5
            while reader._queue.qsize() < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
            drained = reader.drain()
            assert [entry.request_id for entry in drained] == [1, 2, 3]
            assert reader.drain() == []  # nothing accepted twice
        finally:
            # Close the write end first: EOF releases the reader thread's
            # blocking readline (closing the read end under it would
            # deadlock on the stream's buffer lock).
            writer.close()
            reader._thread.join(5)
            stream.close()

    def test_sigterm_ends_loop_with_all_accepted_lines_answered(self, dataset):
        """The pipe never reaches EOF; only the stop signal ends the loop."""
        read_fd, write_fd = os.pipe()
        writer = os.fdopen(write_fd, "w")
        stream = os.fdopen(read_fd, "r")
        output = io.StringIO()
        stop = ShutdownSignal()  # not installed: the test triggers it
        served = []
        with QueryService(dataset.graph, dataset.calendars) as service:
            thread = threading.Thread(
                target=lambda: served.append(
                    serve_jsonl(service, stream, output, batch_size=4, stop=stop)
                )
            )
            thread.start()
            try:
                for i in range(5):
                    writer.write(_request_line(i))
                writer.flush()
                deadline = time.monotonic() + 10
                while output.getvalue().count("\n") < 5 and time.monotonic() < deadline:
                    time.sleep(0.01)
                stop.trigger()
                thread.join(10)
                assert not thread.is_alive(), "stop signal did not end the loop"
            finally:
                stop.trigger()
                writer.close()
                thread.join(10)
                stream.close()
        assert served == [5]
        responses = [json.loads(line) for line in output.getvalue().splitlines()]
        assert [r["id"] for r in responses] == [0, 1, 2, 3, 4]
        assert all("error" not in r for r in responses)


# ----------------------------------------------------------------------
# asyncio worker
# ----------------------------------------------------------------------
class _SlowAsyncService:
    """Wraps a QueryService; solve_many_async blocks until released."""

    def __init__(self, service):
        self._service = service
        self.entered = threading.Event()
        self.release = asyncio.Event()  # bound to the worker's loop via harness

    def __getattr__(self, name):
        return getattr(self._service, name)

    async def solve_many_async(self, queries, **kwargs):
        self.entered.set()
        await self.release.wait()
        return await self._service.solve_many_async(queries, **kwargs)


class TestWorkerDrain:
    def test_aclose_waits_for_in_flight_batch_and_answers_it(self, dataset):
        harness = WorkerHarness(dataset)
        slow = _SlowAsyncService(harness.service)
        harness.server.service = slow
        harness._thread.start()
        assert harness._started.wait(10)
        sock = _client_socket(harness.address, timeout=15.0)
        try:
            query = SGQuery(initiator=0, group_size=3, radius=2, acquaintance=1)
            send_frame(
                sock, {"type": "batch", "id": 1, "requests": [request_for(query)]}
            )
            assert slow.entered.wait(10), "batch never reached the service"
            closing = asyncio.run_coroutine_threadsafe(
                harness.server.aclose(), harness.loop
            )
            time.sleep(0.2)
            assert not closing.done(), "aclose returned with a frame in flight"
            harness.loop.call_soon_threadsafe(slow.release.set)
            closing.result(10)
            # The accepted frame was answered before the connection closed.
            reply = recv_frame(sock)
            assert reply["type"] == "batch_result"
            assert reply["id"] == 1
            assert "error" not in reply["results"][0]
        finally:
            sock.close()
            harness.loop.call_soon_threadsafe(harness.loop.stop)
            harness._thread.join(10)
            harness.service.close()

    def test_aclose_idempotent_when_idle(self, dataset):
        harness = WorkerHarness(dataset).start()
        try:
            asyncio.run_coroutine_threadsafe(harness.server.aclose(), harness.loop).result(10)
            asyncio.run_coroutine_threadsafe(harness.server.aclose(), harness.loop).result(10)
        finally:
            harness.loop.call_soon_threadsafe(harness.loop.stop)
            harness._thread.join(10)
            harness.service.close()
