"""Live-graph mutation tests: targeted invalidation, deltas, catch-up, wire.

Covers the four edge cases the live-graph contract names (mutating a vertex
inside an in-flight ego build, delta applied twice, version-gap fallback,
``remove_edge`` on a missing edge) plus the exact-eviction accounting the
reverse vertex index promises.  Every test builds its *own* dataset —
mutating the module-level memoized ``workload()`` would poison other tests.
"""

import threading
from types import SimpleNamespace

import pytest

from repro.core import SGQuery
from repro.exceptions import (
    GraphError,
    ProtocolError,
    QueryError,
    WorkerUnavailableError,
)
from repro.graph import (
    GraphOverlay,
    Mutation,
    MutationBatch,
    SocialGraph,
    graph_to_snapshot,
)
from repro.graph.csr import csr_available
from repro.service import MUTATION_LOG_CAPACITY, QueryService, RemoteBackend
from repro.service.net.protocol import PROTOCOL_VERSION, recv_frame, send_frame

from ..conftest import make_random_calendars, make_random_graph
from .test_net import WorkerHarness, _client_socket


def path_service(**kwargs):
    """Serial service over the path graph 0-1-2-3-4-5 (unit distances)."""
    graph = SocialGraph([(i, i + 1, 1.0) for i in range(5)])
    return QueryService(graph, backend="serial", **kwargs)


def radius1_queries(initiators):
    return [
        SGQuery(initiator=i, group_size=2, radius=1, acquaintance=0) for i in initiators
    ]


def canon_edges(graph):
    return sorted((*sorted((u, v), key=repr), d) for u, v, d in graph.edges())


def fresh_dataset(seed=21, n=24):
    """Seeded dataset; equal-but-distinct per call (never the cached workload)."""
    graph = make_random_graph(seed, n=n, edge_prob=0.3)
    calendars = make_random_calendars(seed, graph.vertices(), horizon=10)
    return SimpleNamespace(graph=graph, calendars=calendars)


# ----------------------------------------------------------------------
# targeted invalidation accounting
# ----------------------------------------------------------------------
class TestTargetedInvalidation:
    def test_remove_edge_evicts_exactly_the_containing_egos(self):
        with path_service() as service:
            service.solve_many(radius1_queries(range(6)))
            assert service.cache_info().size == 6
            # remove_edge(0, 1) touches {0, 1}; the radius-1 egos containing
            # either are exactly those of initiators 0, 1 and 2.
            report = service.apply_mutations([Mutation.remove_edge(0, 1)])
            assert report.mutations == 1
            assert report.invalidated == 3
            assert report.from_version == 0 and report.to_version == 1
            assert service.cache_info().size == 3
            stats = service.stats()
            assert stats.mutations == 1
            assert stats.invalidations == 3
            # An untouched ego is still a cache hit.
            before = service.cache_info().hits
            service.solve(radius1_queries([4])[0])
            assert service.cache_info().hits == before + 1

    def test_add_edge_evicts_both_endpoint_neighbourhoods(self):
        with path_service() as service:
            service.solve_many(radius1_queries(range(6)))
            # add_edge(0, 5) touches {0, 5}: egos of 0, 1 (contain 0) and
            # 4, 5 (contain 5).
            report = service.apply_mutations([Mutation.add_edge(0, 5, 2.0)])
            assert report.invalidated == 4
            assert service.cache_info().size == 2
            # The rebuilt ego sees the new edge.
            result = service.solve(radius1_queries([0])[0])
            assert result.members == {0, 1}  # nearest neighbour still 1

    def test_availability_mutation_evicts_nothing(self):
        dataset = fresh_dataset(31, n=12)
        with QueryService(dataset.graph, dataset.calendars, backend="serial") as service:
            service.solve_many(radius1_queries(dataset.graph.vertices()))
            warm = service.cache_info().size
            assert warm > 0
            report = service.apply_mutations(
                [Mutation.update_availability(0, (1, 2, 3))]
            )
            # Topology-only feasible graphs: calendars are read live by the
            # solvers, so no cached ego went stale.
            assert report.invalidated == 0
            assert service.cache_info().size == warm
            assert service.live_version == 1
            assert dataset.calendars.get(0).available_slots() == [1, 2, 3]


# ----------------------------------------------------------------------
# edge case: mutating a vertex inside an in-flight ego build
# ----------------------------------------------------------------------
class TestInFlightBuilds:
    def _paused_service(self, monkeypatch):
        import repro.service.query_service as qs_module

        service = path_service()
        started = threading.Event()
        release = threading.Event()
        real_extract = qs_module.extract_query_forms

        def paused_extract(g, initiator, radius, kernel):
            started.set()
            assert release.wait(10), "test deadlock: build never released"
            return real_extract(g, initiator, radius, kernel)

        monkeypatch.setattr(qs_module, "extract_query_forms", paused_extract)
        return service, started, release

    def test_mutation_inside_inflight_ego_skips_insert(self, monkeypatch):
        service, started, release = self._paused_service(monkeypatch)
        with service:
            # Ego of initiator 0 at radius 2 is {0, 1, 2}.
            query = SGQuery(initiator=0, group_size=2, radius=2, acquaintance=0)
            results = []
            builder = threading.Thread(target=lambda: results.append(service.solve(query)))
            builder.start()
            assert started.wait(10), "build never started"
            # The mutation touches vertices 1 and 2 — inside the in-flight
            # ego — so its epoch stamp must veto the insert.
            service.apply_mutations([Mutation.remove_edge(1, 2)])
            release.set()
            builder.join(10)
            assert not builder.is_alive()
            assert results, "builder thread produced no result"
            assert service.cache_info().size == 0
            # The next solve is a fresh miss against the mutated graph.
            after = service.solve(query)
            assert service.cache_info().size == 1
            assert after.members == {0, 1}  # vertex 2 is unreachable now

    def test_mutation_outside_ego_lets_insert_proceed(self, monkeypatch):
        service, started, release = self._paused_service(monkeypatch)
        with service:
            query = SGQuery(initiator=0, group_size=2, radius=2, acquaintance=0)
            builder = threading.Thread(target=service.solve, args=(query,))
            builder.start()
            assert started.wait(10)
            # Touches {4, 5}, disjoint from the ego {0, 1, 2}: no veto.
            service.apply_mutations([Mutation.remove_edge(4, 5)])
            release.set()
            builder.join(10)
            assert not builder.is_alive()
            assert service.cache_info().size == 1
            before = service.cache_info().hits
            service.solve(query)
            assert service.cache_info().hits == before + 1


# ----------------------------------------------------------------------
# edge case: remove_edge on a nonexistent edge (prefix semantics)
# ----------------------------------------------------------------------
class TestPrefixSemantics:
    def test_missing_edge_raises_after_distributing_prefix(self):
        with path_service() as service:
            run = [
                Mutation.add_edge(0, 3, 2.0),
                Mutation.remove_edge(4, 5),
                Mutation.remove_edge(0, 5),  # never existed -> GraphError
                Mutation.add_edge(1, 4, 1.0),  # must NOT be applied
            ]
            with pytest.raises(GraphError):
                service.apply_mutations(run)
            # The applied prefix is versioned and logged ...
            assert service.live_version == 2
            chain = service.mutation_log_since(0)
            assert chain is not None and len(chain) == 1
            assert chain[0].from_version == 0 and chain[0].to_version == 2
            assert chain[0].mutations == tuple(run[:2])
            # ... and the graph reflects exactly that prefix.
            assert service.graph.has_edge(0, 3)
            assert not service.graph.has_edge(4, 5)
            assert not service.graph.has_edge(1, 4)
            assert service.stats().mutations == 2

    def test_failing_first_mutation_advances_nothing(self):
        with path_service() as service:
            with pytest.raises(GraphError):
                service.apply_mutations([Mutation.remove_edge(0, 5)])
            assert service.live_version == 0
            assert service.mutation_log_since(0) == []

    def test_non_mutation_input_rejected_up_front(self):
        with path_service() as service:
            with pytest.raises(QueryError):
                service.apply_mutations([Mutation.add_edge(0, 2, 1.0), "nope"])
            assert service.live_version == 0


# ----------------------------------------------------------------------
# edge case: delta applied twice (idempotence) + version gaps
# ----------------------------------------------------------------------
class TestDeltaIdempotence:
    def test_delta_applied_twice_is_a_noop(self):
        source, replica = path_service(), path_service()
        with source, replica:
            replica.solve_many(radius1_queries(range(6)))
            source.apply_mutations(
                [Mutation.remove_edge(0, 1), Mutation.add_edge(2, 4, 1.5)]
            )
            (batch,) = source.mutation_log_since(0)
            status, evicted = replica.apply_delta(batch)
            assert status == "applied"
            assert evicted > 0
            assert replica.live_version == source.live_version == 2
            assert canon_edges(replica.graph) == canon_edges(source.graph)
            # The retried frame changes nothing.
            assert replica.apply_delta(batch) == ("noop", 0)
            assert replica.live_version == 2
            assert canon_edges(replica.graph) == canon_edges(source.graph)

    def test_future_delta_reports_a_gap(self):
        with path_service() as replica:
            batch = MutationBatch(5, 6, (Mutation.remove_edge(0, 1),))
            assert replica.apply_delta(batch) == ("gap", 0)
            assert replica.live_version == 0
            assert replica.graph.has_edge(0, 1)  # untouched


class TestMutationLog:
    def test_log_chains_from_batch_boundaries_only(self):
        with path_service() as service:
            service.apply_mutations([Mutation.remove_edge(0, 1), Mutation.add_edge(0, 2, 1.0)])
            service.apply_mutations([Mutation.add_edge(0, 1, 9.0)])
            assert [
                (b.from_version, b.to_version) for b in service.mutation_log_since(0)
            ] == [(0, 2), (2, 3)]
            assert [
                (b.from_version, b.to_version) for b in service.mutation_log_since(2)
            ] == [(2, 3)]
            assert service.mutation_log_since(3) == []  # already current
            assert service.mutation_log_since(1) is None  # mid-batch: no boundary
            assert service.mutation_log_since(4) is None  # from the future

    def test_log_evicts_beyond_capacity(self):
        with path_service() as service:
            # Toggle one edge so every mutation is valid; one batch each.
            for i in range(MUTATION_LOG_CAPACITY + 2):
                if i % 2 == 0:
                    service.apply_mutations([Mutation.add_edge(0, 5, 1.0)])
                else:
                    service.apply_mutations([Mutation.remove_edge(0, 5)])
            assert service.live_version == MUTATION_LOG_CAPACITY + 2
            assert service.mutation_log_since(0) is None  # tail fell off
            assert len(service.mutation_log_since(2)) == MUTATION_LOG_CAPACITY


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
class TestSnapshots:
    def test_snapshot_transfers_state_and_pins_version(self):
        source_data, replica_data = fresh_dataset(41), fresh_dataset(41)
        source = QueryService(source_data.graph, source_data.calendars, backend="serial")
        replica = QueryService(replica_data.graph, replica_data.calendars, backend="serial")
        with source, replica:
            source.apply_mutations(
                [
                    Mutation.add_edge(0, 23, 1.0),
                    Mutation.update_availability(3, (2, 4, 6)),
                ]
            )
            replica.solve_many(radius1_queries(range(6)))
            warm = replica.cache_info().size
            dropped = replica.apply_snapshot(source.snapshot_payload())
            assert dropped == warm
            assert replica.cache_info().size == 0
            assert replica.live_version == source.live_version == 2
            assert canon_edges(replica.graph) == canon_edges(source.graph)
            assert replica_data.calendars.get(3).available_slots() == [2, 4, 6]
            # The log restarts at the snapshot: nothing older can be served.
            assert replica.mutation_log_since(0) is None
            assert replica.mutation_log_since(2) == []

    def test_snapshot_without_version_is_rejected(self):
        with path_service() as service:
            with pytest.raises(ProtocolError):
                service.apply_snapshot({"vertices": [], "edges": []})


# ----------------------------------------------------------------------
# immutable substrates get wrapped in an overlay automatically
# ----------------------------------------------------------------------
@pytest.mark.skipif(not csr_available(), reason="numpy not installed")
class TestOverlayAutoWrap:
    def test_edge_mutation_wraps_csr_substrate(self, tmp_path):
        from repro.graph.csr import load_stgq, pack_graph

        base = make_random_graph(51, n=12, edge_prob=0.4)
        pack_graph(base, tmp_path / "g.stgq")
        csr = load_stgq(tmp_path / "g.stgq", mmap=True)
        with QueryService(csr, backend="serial") as service:
            u, v, _ = base.edges()[0]
            service.apply_mutations([Mutation.remove_edge(u, v)])
            assert isinstance(service.graph, GraphOverlay)
            assert service.graph.base is csr
            assert not service.graph.has_edge(u, v)
            assert csr.has_edge(u, v)  # the mmap'd file is untouched

    def test_availability_only_run_does_not_wrap(self, tmp_path):
        from repro.graph.csr import load_stgq, pack_graph

        base = make_random_graph(53, n=12, edge_prob=0.4)
        pack_graph(base, tmp_path / "g.stgq")
        csr = load_stgq(tmp_path / "g.stgq", mmap=True)
        calendars = make_random_calendars(53, base.vertices(), horizon=10)
        with QueryService(csr, calendars, backend="serial") as service:
            service.apply_mutations([Mutation.update_availability(0, (1,))])
            assert service.graph is csr  # no overlay needed


# ----------------------------------------------------------------------
# distribution over the wire (real WorkerServer + RemoteBackend)
# ----------------------------------------------------------------------
class TestRemoteDistribution:
    @pytest.fixture
    def fleet(self):
        workers = [WorkerHarness(fresh_dataset()).start() for _ in range(2)]
        gateway_data = fresh_dataset()
        backend = RemoteBackend([w.address for w in workers], timeout=30.0)
        gateway = QueryService(
            gateway_data.graph, gateway_data.calendars, backend=backend
        )
        yield gateway, workers
        gateway.close()
        for worker in workers:
            if not worker._thread.is_alive():
                continue  # a test already stopped this worker
            try:
                worker.stop()
            except Exception:
                pass

    def test_deltas_reach_every_worker(self, fleet):
        gateway, workers = fleet
        queries = radius1_queries(range(8))
        gateway.solve_many(queries)  # warm the worker caches
        report = gateway.apply_mutations(
            [Mutation.remove_edge(*gateway.graph.edges()[0][:2]), Mutation.add_edge(0, 23, 1.0)]
        )
        assert report.to_version == 2
        for worker in workers:
            assert worker.service.live_version == 2
            assert canon_edges(worker.service.graph) == canon_edges(gateway.graph)
        # Post-mutation answers match a from-scratch serial rebuild.
        rebuilt = fresh_dataset()
        with QueryService(rebuilt.graph, rebuilt.calendars, backend="serial") as ref:
            ref.apply_mutations(
                [Mutation.remove_edge(*rebuilt.graph.edges()[0][:2]), Mutation.add_edge(0, 23, 1.0)]
            )
            expected = ref.solve_many(queries)
        live = gateway.solve_many(queries)
        assert [(r.feasible, r.members, r.total_distance) for r in live] == [
            (r.feasible, r.members, r.total_distance) for r in expected
        ]

    def test_version_gap_bridged_by_log_replay(self, fleet):
        gateway, workers = fleet
        # Capture version-0 state BEFORE mutating (a version-consistent pin).
        pin = graph_to_snapshot(gateway.graph)
        pin["version"] = 0
        gateway.apply_mutations([Mutation.add_edge(0, 22, 1.0)])
        # Knock worker 0 back to version 0 behind the gateway's back.
        workers[0].service.apply_snapshot(pin)
        assert workers[0].service.live_version == 0
        # The next batch hits a gap on worker 0; the backend must replay the
        # mutation log to bridge it.
        gateway.apply_mutations([Mutation.add_edge(0, 23, 1.0)])
        for worker in workers:
            assert worker.service.live_version == gateway.live_version == 2
            assert canon_edges(worker.service.graph) == canon_edges(gateway.graph)

    def test_version_gap_beyond_log_falls_back_to_snapshot(self, fleet):
        gateway, workers = fleet
        # One 2-mutation batch (0 -> 2): version 1 is mid-batch, not a boundary.
        gateway.apply_mutations(
            [Mutation.add_edge(0, 22, 1.0), Mutation.add_edge(0, 23, 1.0)]
        )
        # Pin worker 0 at the mid-batch version the log cannot chain from.
        pin = graph_to_snapshot(workers[0].service.graph)
        pin["version"] = 1
        workers[0].service.apply_snapshot(pin)
        assert gateway.mutation_log_since(1) is None
        gateway.apply_mutations([Mutation.remove_edge(0, 22)])
        for worker in workers:
            assert worker.service.live_version == gateway.live_version == 3
            assert canon_edges(worker.service.graph) == canon_edges(gateway.graph)

    def test_dead_worker_fails_the_distribution(self, fleet):
        gateway, workers = fleet
        workers[1].stop()
        with pytest.raises(WorkerUnavailableError):
            gateway.apply_mutations([Mutation.add_edge(0, 23, 1.0)])


class TestWireFrames:
    @pytest.fixture
    def worker(self):
        harness = WorkerHarness(fresh_dataset()).start()
        yield harness
        try:
            harness.stop()
        except Exception:
            pass

    def test_hello_advertises_live_version(self, worker):
        worker.service.apply_mutations([Mutation.add_edge(0, 23, 1.0)])
        sock = _client_socket(worker.address)
        try:
            send_frame(sock, {"type": "hello", "v": PROTOCOL_VERSION})
            hello = recv_frame(sock)
            assert hello["type"] == "hello"
            assert hello["live_version"] == 1
        finally:
            sock.close()

    def test_delta_frame_applied_then_noop(self, worker):
        batch = MutationBatch(0, 1, (Mutation.add_edge(0, 23, 1.0),))
        sock = _client_socket(worker.address)
        try:
            for expected in ("applied", "noop"):
                send_frame(
                    sock, {"type": "delta", "id": "t", "batch": batch.as_wire()}
                )
                reply = recv_frame(sock)
                assert reply["type"] == "delta_result"
                assert reply["id"] == "t"
                assert reply["status"] == expected
                assert reply["version"] == 1
        finally:
            sock.close()
        assert worker.service.graph.has_edge(0, 23)

    def test_malformed_delta_keeps_connection_open(self, worker):
        sock = _client_socket(worker.address)
        try:
            send_frame(sock, {"type": "delta", "id": "t", "batch": "nonsense"})
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            # The connection survives for the next frame.
            send_frame(sock, {"type": "ping", "id": "p"})
            assert recv_frame(sock)["type"] == "pong"
        finally:
            sock.close()

    def test_snapshot_frame_replaces_worker_state(self, worker):
        source = path_service()
        with source:
            source.apply_mutations([Mutation.add_edge(0, 5, 2.0)])
            payload = source.snapshot_payload()
        sock = _client_socket(worker.address)
        try:
            send_frame(sock, {"type": "snapshot", "id": "t", "payload": payload})
            reply = recv_frame(sock)
            assert reply["type"] == "snapshot_applied"
            assert reply["version"] == 1
        finally:
            sock.close()
        assert worker.service.live_version == 1
        assert canon_edges(worker.service.graph) == canon_edges(source.graph)
