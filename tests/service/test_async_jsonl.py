"""Tests for the asyncio front-end and the JSONL request loop."""

import asyncio
import io
import json

import pytest

from repro.core import SGQuery, STGQuery
from repro.exceptions import QueryError
from repro.experiments.workloads import workload
from repro.service import QueryService, serve_jsonl
from repro.service.jsonl import query_from_request, response_for


@pytest.fixture(scope="module")
def dataset():
    return workload(network_size=60, schedule_days=1, seed=7)


@pytest.fixture
def service(dataset):
    with QueryService(dataset.graph, dataset.calendars, max_workers=2) as svc:
        yield svc


class TestAsyncFrontend:
    def test_solve_many_async_matches_sync(self, dataset, service):
        batch = [
            SGQuery(initiator=initiator, group_size=4, radius=1, acquaintance=2)
            for initiator in dataset.people[:6]
        ]
        sync_results = service.solve_many(batch)
        async_results = asyncio.run(service.solve_many_async(batch))
        assert [r.members for r in async_results] == [r.members for r in sync_results]

    def test_solve_async_single(self, dataset, service):
        query = SGQuery(initiator=dataset.people[0], group_size=4, radius=1, acquaintance=2)
        result = asyncio.run(service.solve_async(query))
        assert result.members == service.solve(query).members

    def test_pipelined_batches_run_concurrently(self, dataset, service):
        batches = [
            [
                SGQuery(initiator=initiator, group_size=p, radius=1, acquaintance=2)
                for initiator in dataset.people[:4]
            ]
            for p in (3, 4, 5)
        ]

        async def pipeline():
            tasks = [asyncio.ensure_future(service.solve_many_async(b)) for b in batches]
            return await asyncio.gather(*tasks)

        all_results = asyncio.run(pipeline())
        assert [len(results) for results in all_results] == [4, 4, 4]
        for batch, results in zip(batches, all_results):
            direct = service.solve_many(batch)
            assert [r.members for r in results] == [r.members for r in direct]


class TestRequestParsing:
    def test_aliases(self):
        query = query_from_request({"initiator": 1, "p": 4, "s": 2, "k": 1, "m": 3})
        assert isinstance(query, STGQuery)
        assert (query.group_size, query.radius, query.acquaintance) == (4, 2, 1)
        assert query.activity_length == 3

    def test_long_names_and_sgq_default(self):
        query = query_from_request({"initiator": "alice", "group_size": 3})
        assert isinstance(query, SGQuery)
        assert (query.radius, query.acquaintance) == (1, 1)

    def test_alias_collision_rejected(self):
        with pytest.raises(QueryError):
            query_from_request({"initiator": 1, "p": 4, "group_size": 5})

    def test_missing_fields_rejected(self):
        with pytest.raises(QueryError):
            query_from_request({"p": 4})
        with pytest.raises(QueryError):
            query_from_request({"initiator": 1})
        with pytest.raises(QueryError):
            query_from_request([1, 2, 3])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(QueryError):
            query_from_request({"initiator": 1, "p": 0})
        with pytest.raises(QueryError):
            query_from_request({"initiator": 1, "p": "four"})

    def test_response_total_distance_null_when_infeasible(self, dataset, service):
        # An impossible clique demand: feasible=False must encode cleanly.
        query = SGQuery(initiator=dataset.people[0], group_size=40, radius=1, acquaintance=0)
        result = service.solve(query)
        assert result.feasible is False
        payload = response_for(9, result)
        assert payload["total_distance"] is None
        assert json.dumps(payload)  # JSON-safe (no Infinity)


class TestServeJsonl:
    def _run(self, service, lines, **kwargs):
        out = io.StringIO()
        served = serve_jsonl(service, io.StringIO("\n".join(lines) + "\n"), out, **kwargs)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        return served, responses

    def test_order_and_errors_preserved(self, dataset, service):
        people = dataset.people
        lines = [
            json.dumps({"id": 1, "initiator": people[0], "p": 4, "k": 2}),
            "{broken",
            json.dumps({"id": 3, "initiator": people[1], "p": 3, "k": 1, "m": 2}),
            json.dumps({"id": 4, "p": 4}),
            "",
            json.dumps({"id": 5, "initiator": people[2], "p": 3, "k": 1}),
        ]
        served, responses = self._run(service, lines, batch_size=2)
        assert served == 5  # blank line skipped
        assert [r["id"] for r in responses] == [1, None, 3, 4, 5]
        assert "error" in responses[1]
        assert "error" in responses[3]
        assert responses[0]["solver"] == "SGSelect"
        assert responses[2]["solver"] == "STGSelect"
        if responses[2]["feasible"]:
            assert len(responses[2]["period"]) == 2

    def test_matches_direct_solve(self, dataset, service):
        people = dataset.people
        lines = [
            json.dumps({"id": i, "initiator": people[i % 5], "p": 4, "k": 2})
            for i in range(12)
        ]
        served, responses = self._run(service, lines, batch_size=4)
        assert served == 12
        for i, response in enumerate(responses):
            direct = service.solve(
                SGQuery(initiator=people[i % 5], group_size=4, radius=1, acquaintance=2)
            )
            assert response["feasible"] == direct.feasible
            if direct.feasible:
                assert response["members"] == direct.sorted_members()
                assert response["total_distance"] == pytest.approx(direct.total_distance)

    def test_process_backend_loop(self, dataset):
        people = dataset.people
        lines = [
            json.dumps({"id": i, "initiator": people[i % 3], "p": 3, "k": 1})
            for i in range(6)
        ]
        with QueryService(
            dataset.graph, dataset.calendars, max_workers=2, backend="process"
        ) as svc:
            served, responses = self._run(svc, lines, batch_size=3)
        assert served == 6
        assert [r["id"] for r in responses] == list(range(6))

    def test_rejects_bad_batch_size(self, service):
        with pytest.raises(QueryError):
            serve_jsonl(service, io.StringIO(""), io.StringIO(), batch_size=0)

    def test_empty_input(self, service):
        out = io.StringIO()
        assert serve_jsonl(service, io.StringIO(""), out) == 0
        assert out.getvalue() == ""


class TestErrorRecoveryAndClients:
    def test_solver_error_becomes_error_response(self, dataset, service):
        # Initiator 99999 is not in the graph: parsing succeeds, solving
        # raises inside the library — the loop must answer with an error
        # object and keep serving the rest of the batch.
        people = dataset.people
        lines = [
            json.dumps({"id": 1, "initiator": people[0], "p": 3, "k": 1}),
            json.dumps({"id": 2, "initiator": 99999, "p": 3, "k": 1}),
            json.dumps({"id": 3, "initiator": people[1], "p": 3, "k": 1}),
        ]
        out = io.StringIO()
        served = serve_jsonl(service, io.StringIO("\n".join(lines) + "\n"), out, batch_size=3)
        responses = [json.loads(line) for line in out.getvalue().splitlines()]
        assert served == 3
        assert [r["id"] for r in responses] == [1, 2, 3]
        assert "feasible" in responses[0]
        assert "error" in responses[1] and "99999" in responses[1]["error"]
        assert "feasible" in responses[2]
        # Each good query is counted exactly once (no fallback double count).
        assert service.stats().queries == 2

    def test_request_response_client_does_not_deadlock(self, dataset):
        # A strict request/response client writes one request, then blocks
        # reading the response before sending the next.  The serve loop must
        # flush pending answers instead of waiting for a full batch.
        import os
        import threading

        in_read_fd, in_write_fd = os.pipe()
        out_read_fd, out_write_fd = os.pipe()
        server_in = os.fdopen(in_read_fd, "r")
        client_out = os.fdopen(in_write_fd, "w")
        client_in = os.fdopen(out_read_fd, "r")
        server_out = os.fdopen(out_write_fd, "w")

        with QueryService(dataset.graph, dataset.calendars, max_workers=2) as svc:
            server = threading.Thread(
                target=serve_jsonl, args=(svc, server_in, server_out), kwargs={"batch_size": 64}
            )
            server.start()
            got = []
            try:
                for i in range(3):
                    client_out.write(
                        json.dumps({"id": i, "initiator": dataset.people[i], "p": 3, "k": 1})
                        + "\n"
                    )
                    client_out.flush()
                    got.append(json.loads(client_in.readline()))  # blocks pre-fix
            finally:
                client_out.close()
                server.join(timeout=15)
        assert not server.is_alive()
        assert [r["id"] for r in got] == [0, 1, 2]
        for handle in (server_in, client_in, server_out):
            handle.close()
