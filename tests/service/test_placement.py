"""Tests for load-aware placement (:mod:`repro.service.placement`).

Two contracts pinned here:

1. **Routing is a pure deployment decision.**  Every worker holds the full
   graph, so *any* placement map — random ring seeds, explicit assignments,
   replicated hot egos, maps swapped between batches — must yield results
   byte-identical to the serial backend.
2. **Honest accounting under replication.**  Non-replicated placements
   reproduce serial cache counters exactly.  A replicated ego builds one
   ego-network copy per replica actually used, so ``cache_misses`` may
   exceed serial by at most (replica width - 1) per replicated ego while
   ``hits + misses`` stays conserved and every solver counter stays
   byte-identical.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SGQuery
from repro.exceptions import QueryError
from repro.service import (
    PlacementMap,
    QueryService,
    ShardMap,
    build_placement,
    load_placement,
    save_placement,
)

from .test_backends import DETERMINISTIC_COUNTERS, build_batch, dataset, run_backend  # noqa: F401

SOLVER_COUNTERS = tuple(
    name for name in DETERMINISTIC_COUNTERS if name not in ("cache_hits", "cache_misses")
)


def _queries(initiators):
    return [
        SGQuery(initiator=initiator, group_size=3, radius=1, acquaintance=1)
        for initiator in initiators
    ]


class TestRing:
    def test_shards_in_range_and_deterministic(self):
        placement = PlacementMap(4)
        twin = PlacementMap(4)
        for vertex in list(range(200)) + ["alice", ("compound", 3)]:
            shard = placement.shard_of(vertex)
            assert 0 <= shard < 4
            assert twin.shard_of(vertex) == shard

    def test_seed_changes_the_ring(self):
        base = PlacementMap(4, seed=0)
        other = PlacementMap(4, seed=1)
        assert any(base.shard_of(v) != other.shard_of(v) for v in range(100))

    def test_ring_covers_every_shard(self):
        placement = PlacementMap(4)
        assert {placement.shard_of(v) for v in range(500)} == {0, 1, 2, 3}

    def test_single_shard_short_circuits(self):
        placement = PlacementMap(1)
        assert placement.shard_of("anything") == 0

    def test_ring_is_more_stable_than_modulo(self):
        # Growing the fleet by one worker moves a bounded slice of the key
        # space on the ring; CRC32 % n reshuffles nearly everything.
        ring4, ring5 = PlacementMap(4), PlacementMap(5)
        crc4, crc5 = ShardMap(4), ShardMap(5)
        keys = range(2000)
        ring_moved = sum(1 for v in keys if ring4.shard_of(v) != ring5.shard_of(v))
        crc_moved = sum(1 for v in keys if crc4.shard_of(v) != crc5.shard_of(v))
        assert ring_moved < crc_moved


class TestRouting:
    def test_replicas_beat_assignments_beat_ring(self):
        placement = PlacementMap(
            4, assignments={"a": 1, "b": 2}, replicas={"b": (3, 0)}
        )
        assert placement.replicas_of("b") == (3, 0)
        assert placement.shard_of("b") == 3
        assert placement.replicas_of("a") == (1,)
        assert placement.replicas_of("unseen") == (placement._ring_shard("unseen"),)

    def test_partition_round_robins_replicated_egos(self):
        placement = PlacementMap(4, replicas={"hot": (0, 2)})
        parts = placement.partition(_queries(["hot"] * 6))
        assert sorted(parts) == [0, 2]
        assert len(parts[0]) == 3 and len(parts[2]) == 3
        # Submission order survives within each shard.
        for entries in parts.values():
            indices = [index for index, _ in entries]
            assert indices == sorted(indices)

    def test_round_robin_cursor_persists_across_batches(self):
        # Consecutive one-query batches from the hot ego must keep
        # alternating, not all land on the first replica.
        placement = PlacementMap(4, replicas={"hot": (1, 3)})
        shards = [next(iter(placement.partition(_queries(["hot"])))) for _ in range(4)]
        assert shards == [1, 3, 1, 3]

    def test_load_report_is_pure(self):
        placement = PlacementMap(4, replicas={"hot": (0, 2)})
        batch = _queries(["hot"] * 4)
        first = placement.load_report(batch)
        assert placement.load_report(batch) == first  # no cursor perturbation
        assert first[0] == 2 and first[2] == 2

    def test_partition_feeds_route_report(self):
        placement = PlacementMap(2, version=7, assignments={"a": 0, "b": 1})
        placement.partition(_queries(["a", "b", "a", "b"]))
        report = placement.route_report()
        assert report["strategy"] == "vnode"
        assert report["version"] == 7
        assert report["assigned_egos"] == 2
        assert report["replicated_egos"] == 0
        assert report["routed"] == [2, 2]

    def test_rejects_bad_shapes(self):
        with pytest.raises(QueryError):
            PlacementMap(0)
        with pytest.raises(QueryError):
            PlacementMap(2, version=0)  # 0 is reserved for "no placement"
        with pytest.raises(QueryError):
            PlacementMap(2, assignments={"a": 2})  # shard out of range
        with pytest.raises(QueryError):
            PlacementMap(2, replicas={"a": (0, 0)})  # duplicate replica


class TestWireAndFile:
    def test_wire_roundtrip(self):
        placement = PlacementMap(
            4,
            version=3,
            vnodes=32,
            seed=9,
            assignments={"a": 1, ("t", 2): 3},
            replicas={"hot": (0, 2, 3)},
        )
        clone = PlacementMap.from_wire(placement.as_wire())
        assert clone.as_wire() == placement.as_wire()
        for vertex in ["a", ("t", 2), "hot", "unseen", 17]:
            assert clone.replicas_of(vertex) == placement.replicas_of(vertex)

    def test_wire_is_json_safe(self):
        placement = PlacementMap(2, assignments={"a": 0}, replicas={"h": (0, 1)})
        payload = json.loads(json.dumps(placement.as_wire()))
        assert PlacementMap.from_wire(payload).as_wire() == placement.as_wire()

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            [],
            {},
            {"n_shards": 2},
            {"n_shards": "2", "version": 1},
            {"n_shards": 2, "version": 0},
            {"n_shards": 2, "version": 1, "assignments": {"a": 0}},
            {"n_shards": 2, "version": 1, "assignments": [["a", 5]]},
            {"n_shards": 2, "version": 1, "replicas": [["a", [0, 0]]]},
            {"n_shards": 2, "version": 1, "replicas": [["a", 0]]},
            {"n_shards": 2, "version": 1, "vnodes": "many"},
        ],
    )
    def test_from_wire_rejects_junk(self, payload):
        with pytest.raises(QueryError):
            PlacementMap.from_wire(payload)

    def test_file_roundtrip(self, tmp_path):
        placement = PlacementMap(3, version=2, replicas={"hot": (0, 1)})
        path = str(tmp_path / "placement.json")
        save_placement(placement, path)
        assert load_placement(path).as_wire() == placement.as_wire()

    def test_load_placement_diagnoses_bad_files(self, tmp_path):
        with pytest.raises(QueryError):
            load_placement(str(tmp_path / "missing.json"))
        junk = tmp_path / "junk.json"
        junk.write_text("{not json", encoding="utf-8")
        with pytest.raises(QueryError):
            load_placement(str(junk))


class TestBuildPlacement:
    def test_packs_by_load_and_replicates_the_hub(self):
        # One hub with half the trace, a tail of small initiators.
        trace = _queries(["hub"] * 40 + ["a"] * 8 + ["b"] * 8 + ["c"] * 8 + ["d"] * 8 + ["e"] * 8)
        placement = build_placement(trace, 4, replicas=2)
        assert "hub" in placement.replicas
        assert len(placement.replicas["hub"]) == 2
        for tail in "abcde":
            assert tail in placement.assignments
        # The packed layout beats CRC32 on its own trace.
        assert placement.imbalance(trace) <= ShardMap(4).imbalance(trace)
        assert placement.imbalance(trace) < 1.5

    def test_cold_initiators_fall_through_to_the_ring(self):
        placement = build_placement(_queries(["a", "b"]), 4)
        unseen = placement.replicas_of("unseen")
        assert unseen == (placement._ring_shard("unseen"),)

    def test_empty_trace_yields_pure_ring(self):
        placement = build_placement([], 4)
        assert placement.assignments == {}
        assert placement.replicas == {}

    def test_replicas_capped_at_fleet_size(self):
        trace = _queries(["hub"] * 10)
        placement = build_placement(trace, 2, replicas=5)
        assert len(placement.replicas["hub"]) == 2

    def test_replicas_one_never_replicates(self):
        trace = _queries(["hub"] * 10 + ["a"])
        placement = build_placement(trace, 2, replicas=1)
        assert placement.replicas == {}
        assert "hub" in placement.assignments


class TestWithReplicas:
    def test_widen_and_collapse(self):
        placement = PlacementMap(4, version=5, replicas={"hot": (1, 3)})
        wide = placement.with_replicas(3)
        assert len(wide.replicas["hot"]) == 3
        assert wide.replicas["hot"][:2] == (1, 3)
        assert wide.version == 5  # same logical placement, different width
        collapsed = placement.with_replicas(1)
        assert collapsed.replicas == {}
        assert collapsed.assignments["hot"] == 1


class TestProcessBackendPlacement:
    def test_placement_routes_the_process_backend(self, dataset):  # noqa: F811
        batch = build_batch(dataset, seed=3, n_queries=16, n_initiators=4, stg_fraction=0.25)
        reference = run_backend(dataset, "serial", batch)
        placement = build_placement(batch, 2, replicas=1)
        with QueryService(
            dataset.graph, dataset.calendars, backend="process", placement=placement
        ) as service:
            assert service.max_workers == 2  # width inferred from the map
            results = service.solve_many(batch)
            stats = service.stats().as_dict()
            info = service.cache_info()
            report = service.route_report()
        keys = [
            (r.feasible, r.members, r.total_distance, getattr(r, "period", None))
            for r in results
        ]
        assert keys == reference[0]
        assert {name: stats[name] for name in DETERMINISTIC_COUNTERS} == reference[1]
        assert (info.hits, info.misses) == (reference[2].hits, reference[2].misses)
        assert report["strategy"] == "vnode"
        assert report["version"] == 1

    def test_replicated_ego_accounting(self, dataset):  # noqa: F811
        # Replication's honest cost: one extra miss per extra replica used;
        # results and solver counters stay byte-identical.
        hot = dataset.people[5]
        batch = _queries([hot] * 12)
        reference_keys, reference_counters, reference_info = run_backend(
            dataset, "serial", batch
        )
        placement = PlacementMap(2, replicas={hot: (0, 1)})
        with QueryService(
            dataset.graph, dataset.calendars, backend="process", placement=placement
        ) as service:
            results = service.solve_many(batch)
            stats = service.stats().as_dict()
            info = service.cache_info()
        keys = [
            (r.feasible, r.members, r.total_distance, getattr(r, "period", None))
            for r in results
        ]
        assert keys == reference_keys
        for counter in SOLVER_COUNTERS:
            assert stats[counter] == reference_counters[counter]
        assert info.hits + info.misses == reference_info.hits + reference_info.misses
        assert reference_info.misses <= info.misses <= reference_info.misses + 1

    def test_update_placement_is_monotonic(self, dataset):  # noqa: F811
        placement = PlacementMap(2, version=1)
        with QueryService(
            dataset.graph, dataset.calendars, backend="process", placement=placement
        ) as service:
            backend = service.backend
            assert backend.placement_version == 1
            assert backend.update_placement(PlacementMap(2, version=3)) is True
            assert backend.placement_version == 3
            assert backend.update_placement(PlacementMap(2, version=2)) is False
            assert backend.placement_version == 3
            with pytest.raises(QueryError):
                backend.update_placement(PlacementMap(3, version=9))

    def test_mid_stream_map_swap_keeps_equivalence(self, dataset):  # noqa: F811
        batch = build_batch(dataset, seed=9, n_queries=14, n_initiators=5, stg_fraction=0.5)
        reference = run_backend(dataset, "serial", batch + batch)
        placement = build_placement(batch, 2, replicas=1, seed=0, version=1)
        remapped = build_placement(batch, 2, replicas=2, seed=4, version=2)
        with QueryService(
            dataset.graph, dataset.calendars, backend="process", placement=placement
        ) as service:
            first = service.solve_many(batch)
            assert service.backend.update_placement(remapped) is True
            second = service.solve_many(batch)
            stats = service.stats().as_dict()
        keys = [
            (r.feasible, r.members, r.total_distance, getattr(r, "period", None))
            for r in list(first) + list(second)
        ]
        assert keys == reference[0]
        for counter in SOLVER_COUNTERS:
            assert stats[counter] == reference[1][counter]

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        ring_seed=st.integers(min_value=0, max_value=2**10),
        replicas=st.integers(min_value=1, max_value=3),
    )
    def test_any_placement_matches_serial(self, dataset, seed, ring_seed, replicas):  # noqa: F811
        batch = build_batch(dataset, seed, n_queries=18, n_initiators=5, stg_fraction=0.3)
        reference_keys, reference_counters, reference_info = run_backend(
            dataset, "serial", batch
        )
        placement = build_placement(
            batch, 3, replicas=replicas, seed=ring_seed, version=1
        )
        with QueryService(
            dataset.graph, dataset.calendars, backend="process", placement=placement
        ) as service:
            results = service.solve_many(batch)
            stats = service.stats().as_dict()
            info = service.cache_info()
        keys = [
            (r.feasible, r.members, r.total_distance, getattr(r, "period", None))
            for r in results
        ]
        assert keys == reference_keys
        for counter in SOLVER_COUNTERS:
            assert stats[counter] == reference_counters[counter]
        assert info.hits + info.misses == reference_info.hits + reference_info.misses
        if replicas == 1:
            assert (info.hits, info.misses) == (reference_info.hits, reference_info.misses)
        else:
            slack = sum(len(group) - 1 for group in placement.replicas.values())
            assert reference_info.misses <= info.misses <= reference_info.misses + slack
