"""Substrate-aware wire behaviour: graph_path on hello, substrate reload on
cache_clear, and per-worker RSS accounting on the process backend.

These extend the protocol-v1 contract without a version bump — the new keys
are optional, so an old gateway talking to a new worker (or vice versa)
keeps working; the tests pin both the happy path and the version-mismatch
refusal that keeps a fleet from silently serving a swapped substrate file.
"""

import pytest

from repro.core import SGQuery
from repro.graph import SocialGraph, csr_available
from repro.service import QueryService, RemoteBackend
from repro.service.codec import request_for
from repro.service.net.protocol import PROTOCOL_VERSION, recv_frame, send_frame

from .test_net import WorkerHarness, _client_socket, _MiniDataset

pytestmark = pytest.mark.skipif(not csr_available(), reason="CSR substrate needs numpy")


def _line_graph(weight=1.0):
    graph = SocialGraph()
    graph.add_edge(0, 1, weight)
    graph.add_edge(1, 2, weight)
    return graph


def _packed(graph, path):
    from repro.graph.csr import pack_graph

    return pack_graph(graph, path)


@pytest.fixture
def substrate_worker(tmp_path):
    csr = _packed(_line_graph(), tmp_path / "g.stgq")
    harness = WorkerHarness(_MiniDataset(csr)).start()
    yield harness, csr
    harness.stop()


class TestHelloGraphPath:
    def test_hello_advertises_substrate(self, substrate_worker):
        harness, csr = substrate_worker
        sock = _client_socket(harness.address)
        try:
            send_frame(sock, {"type": "hello", "v": PROTOCOL_VERSION})
            hello = recv_frame(sock)
            assert hello["graph_path"] == csr.path
            assert hello["graph_version"] == csr.version
        finally:
            sock.close()

    def test_hello_omits_graph_path_for_dict_graph(self):
        harness = WorkerHarness(_MiniDataset(_line_graph())).start()
        try:
            sock = _client_socket(harness.address)
            try:
                send_frame(sock, {"type": "hello", "v": PROTOCOL_VERSION})
                hello = recv_frame(sock)
                assert "graph_path" not in hello
                assert "graph_version" not in hello
            finally:
                sock.close()
        finally:
            harness.stop()


class TestSubstrateReload:
    def test_cache_clear_reloads_substrate(self, substrate_worker, tmp_path):
        """Repack the file, send cache_clear with the new version: the worker
        must serve the new graph, not the cached mmap of the old one."""
        harness, csr = substrate_worker
        new_csr = _packed(_line_graph(weight=7.0), tmp_path / "g.stgq")
        assert new_csr.version != csr.version
        sock = _client_socket(harness.address)
        try:
            send_frame(sock, {"type": "hello", "v": PROTOCOL_VERSION})
            recv_frame(sock)
            send_frame(
                sock,
                {
                    "type": "cache_clear",
                    "id": 1,
                    "graph_path": csr.path,
                    "graph_version": new_csr.version,
                },
            )
            assert recv_frame(sock) == {"type": "cache_cleared", "id": 1}
            query = SGQuery(initiator=0, group_size=2, radius=1, acquaintance=0)
            send_frame(sock, {"type": "batch", "id": 2, "requests": [request_for(query)]})
            reply = recv_frame(sock)
            (result,) = reply["results"]
            assert result["total_distance"] == 7.0
        finally:
            sock.close()

    def test_version_mismatch_refused(self, substrate_worker):
        harness, csr = substrate_worker
        sock = _client_socket(harness.address)
        try:
            send_frame(sock, {"type": "hello", "v": PROTOCOL_VERSION})
            recv_frame(sock)
            send_frame(
                sock,
                {
                    "type": "cache_clear",
                    "id": 1,
                    "graph_path": csr.path,
                    "graph_version": "0" * 16,
                },
            )
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            assert "version" in reply["error"]
            # The worker keeps serving its current substrate afterwards.
            query = SGQuery(initiator=0, group_size=2, radius=1, acquaintance=0)
            send_frame(sock, {"type": "batch", "id": 2, "requests": [request_for(query)]})
            assert recv_frame(sock)["results"][0]["total_distance"] == 1.0
        finally:
            sock.close()

    def test_gateway_clear_cache_ships_substrate(self, tmp_path):
        """End to end: gateway over a path-backed substrate propagates the
        (path, version) pair to TCP workers on clear_cache()."""
        path = tmp_path / "g.stgq"
        csr = _packed(_line_graph(), path)
        harness = WorkerHarness(_MiniDataset(csr)).start()
        try:
            from repro.core import SGSelect

            query = SGQuery(initiator=0, group_size=3, radius=2, acquaintance=1)
            old_expected = SGSelect(csr).solve(query)
            assert old_expected.feasible
            backend = RemoteBackend([harness.address])
            with QueryService(csr, backend=backend) as gateway:
                assert gateway.solve(query).total_distance == old_expected.total_distance
                # Repack the same path with new weights and point the gateway
                # at the fresh substrate, as a deploy would.
                new_csr = _packed(_line_graph(weight=3.0), path)
                new_expected = SGSelect(new_csr).solve(query)
                assert new_expected.total_distance != old_expected.total_distance
                gateway.graph = new_csr
                gateway.clear_cache()
                assert gateway.solve(query).total_distance == new_expected.total_distance
        finally:
            harness.stop()


class TestWorkerRss:
    def test_empty_before_start(self):
        from repro.service.backends import ProcessBackend

        backend = ProcessBackend()
        assert backend.worker_rss() == {}

    def test_reports_positive_rss_per_shard(self, tmp_path):
        from repro.service.backends import ProcessBackend

        csr = _packed(_line_graph(), tmp_path / "g.stgq")
        backend = ProcessBackend(workers=2)
        with QueryService(csr, backend=backend) as service:
            service.solve(SGQuery(initiator=0, group_size=2, radius=1, acquaintance=0))
            rss = backend.worker_rss()
            assert len(rss) == 2
            assert all(bytes_ > 1_000_000 for bytes_ in rss.values())
