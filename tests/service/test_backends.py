"""Executor-backend tests: equivalence, locality, lifecycle.

The equivalence property test is the contract that makes backend selection a
pure deployment decision: for any seeded workload, ``serial``, ``thread`` and
``process`` must return identical results *and* identical aggregate search
stats (wall-clock excluded).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SGQuery, STGQuery
from repro.exceptions import QueryError
from repro.experiments.workloads import workload
from repro.service import (
    BACKEND_NAMES,
    ProcessBackend,
    QueryService,
    SerialBackend,
    ThreadBackend,
    make_backend,
)

#: Deterministic counters that must match across backends (``solve_seconds``
#: is wall-clock and legitimately differs).
DETERMINISTIC_COUNTERS = (
    "queries",
    "sg_queries",
    "stg_queries",
    "feasible",
    "infeasible",
    "cache_hits",
    "cache_misses",
    "nodes_expanded",
)


@pytest.fixture(scope="module")
def dataset():
    """Seeded 60-person workload shared by every test in this module."""
    return workload(network_size=60, schedule_days=1, seed=7)


def build_batch(dataset, seed: int, n_queries: int, n_initiators: int, stg_fraction: float):
    """Seeded mixed SGQ/STGQ batch over a hot set of initiators."""
    rng = random.Random(seed)
    initiators = rng.sample(list(dataset.people), n_initiators)
    batch = []
    for _ in range(n_queries):
        initiator = rng.choice(initiators)
        group_size = rng.randint(3, 5)
        if rng.random() < stg_fraction:
            batch.append(
                STGQuery(
                    initiator=initiator,
                    group_size=group_size,
                    radius=1,
                    acquaintance=2,
                    activity_length=rng.randint(1, 3),
                )
            )
        else:
            batch.append(
                SGQuery(
                    initiator=initiator, group_size=group_size, radius=1, acquaintance=2
                )
            )
    return batch


def run_backend(dataset, backend, batch, workers=2):
    """Solve ``batch`` on ``backend``; return (result keys, stats dict)."""
    with QueryService(
        dataset.graph, dataset.calendars, max_workers=workers, backend=backend
    ) as service:
        results = service.solve_many(batch)
        stats = service.stats().as_dict()
        info = service.cache_info()
    keys = [
        (
            result.feasible,
            result.members,
            result.total_distance,
            getattr(result, "period", None),
        )
        for result in results
    ]
    counters = {name: stats[name] for name in DETERMINISTIC_COUNTERS}
    return keys, counters, info


class TestBackendEquivalence:
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        n_queries=st.integers(min_value=4, max_value=24),
        n_initiators=st.integers(min_value=2, max_value=8),
        stg_fraction=st.sampled_from([0.0, 0.3, 1.0]),
    )
    def test_backends_agree_on_results_and_stats(
        self, dataset, seed, n_queries, n_initiators, stg_fraction
    ):
        batch = build_batch(dataset, seed, n_queries, n_initiators, stg_fraction)
        reference_keys, reference_counters, reference_info = run_backend(
            dataset, "serial", batch
        )
        for backend in ("thread", "process"):
            keys, counters, info = run_backend(dataset, backend, batch)
            assert keys == reference_keys, f"{backend} results diverged"
            assert counters == reference_counters, f"{backend} stats diverged"
            # Cache aggregates match too: every distinct (initiator, radius)
            # misses exactly once wherever it lives.
            assert (info.hits, info.misses) == (reference_info.hits, reference_info.misses)
            assert info.size == reference_info.size

    def test_single_solve_agrees(self, dataset):
        query = SGQuery(initiator=dataset.people[3], group_size=4, radius=2, acquaintance=1)
        reference = QueryService(dataset.graph, dataset.calendars).solve(query)
        for backend in BACKEND_NAMES:
            with QueryService(
                dataset.graph, dataset.calendars, max_workers=2, backend=backend
            ) as service:
                result = service.solve(query)
            assert result.members == reference.members
            assert result.total_distance == reference.total_distance


class TestProcessBackend:
    def test_locality_sharded_caches(self, dataset):
        # With ample cache, the workers' caches together hold exactly one
        # entry per distinct (initiator, radius) — no duplication, because
        # each initiator is owned by exactly one worker.
        batch = build_batch(dataset, seed=11, n_queries=30, n_initiators=6, stg_fraction=0.0)
        distinct = {(query.initiator, query.radius) for query in batch}
        with QueryService(
            dataset.graph, dataset.calendars, max_workers=3, backend="process"
        ) as service:
            service.solve_many(batch)
            service.solve_many(batch)  # second pass: all hits, no new entries
            info = service.cache_info()
        assert info.size == len(distinct)
        assert info.misses == len(distinct)
        assert info.hits == 2 * len(batch) - len(distinct)

    def test_stats_merge_across_batches(self, dataset):
        batch = build_batch(dataset, seed=3, n_queries=10, n_initiators=4, stg_fraction=0.5)
        with QueryService(
            dataset.graph, dataset.calendars, max_workers=2, backend="process"
        ) as service:
            service.solve_many(batch)
            service.solve_many(batch)
            stats = service.stats()
        assert stats.queries == 2 * len(batch)
        assert stats.sg_queries + stats.stg_queries == 2 * len(batch)
        assert stats.feasible + stats.infeasible == 2 * len(batch)

    def test_backend_restarts_after_close(self, dataset):
        query = SGQuery(initiator=dataset.people[0], group_size=3, radius=1, acquaintance=1)
        service = QueryService(
            dataset.graph, dataset.calendars, max_workers=2, backend="process"
        )
        first = service.solve(query)
        service.close()
        second = service.solve(query)  # pools restart lazily
        service.close()
        assert first.members == second.members

    def test_backend_not_shared_between_services(self, dataset):
        backend = ProcessBackend(workers=2)
        query = SGQuery(initiator=dataset.people[0], group_size=3, radius=1, acquaintance=1)
        with QueryService(dataset.graph, dataset.calendars, backend=backend) as service:
            service.solve(query)
            other = QueryService(dataset.graph, dataset.calendars, backend=backend)
            with pytest.raises(QueryError):
                other.solve(query)

    def test_clear_cache_reaches_pool_workers(self):
        """Regression: clear_cache() must invalidate the workers' private
        LRUs *and* refresh their graph copies, or a post-change service
        keeps serving pre-change ego networks from the process backend.
        """
        from repro.graph import SocialGraph

        graph = SocialGraph()
        graph.add_edge(0, "far", 5.0)
        graph.add_vertex("near")
        query = SGQuery(initiator=0, group_size=2, radius=1, acquaintance=0)
        with QueryService(graph, max_workers=2, backend="process") as service:
            assert service.solve(query).members == {0, "far"}
            graph.add_edge(0, "near", 1.0)
            # The owning worker's private cache (and its private graph
            # copy) still answer with the pre-change network.
            assert service.solve(query).members == {0, "far"}
            service.clear_cache()
            fresh = service.solve(query)
            assert fresh.members == {0, "near"}
            assert fresh.total_distance == 1.0
            # Worker caches really were dropped: one entry again, rebuilt.
            assert service.cache_info().size == 1

    def test_clear_cache_before_pools_start_is_noop(self):
        from repro.graph import SocialGraph

        graph = SocialGraph()
        graph.add_edge(0, 1, 1.0)
        with QueryService(graph, max_workers=2, backend="process") as service:
            service.clear_cache()  # pools not started: nothing to clear
            assert service.solve(
                SGQuery(initiator=0, group_size=2, radius=1, acquaintance=0)
            ).feasible

    def test_stg_requires_calendars_before_submission(self, dataset):
        with QueryService(dataset.graph, max_workers=2, backend="process") as service:
            query = STGQuery(
                initiator=dataset.people[0],
                group_size=3,
                radius=1,
                acquaintance=1,
                activity_length=2,
            )
            with pytest.raises(QueryError):
                service.solve(query)
            with pytest.raises(QueryError):
                service.solve_many([query])


class TestBackendConstruction:
    def test_make_backend_names(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("thread", 3), ThreadBackend)
        assert isinstance(make_backend("process", 2), ProcessBackend)

    def test_make_backend_passthrough_instance(self):
        backend = ThreadBackend(2)
        assert make_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(QueryError):
            make_backend("gpu")
        with pytest.raises(QueryError):
            make_backend("threads")

    def test_service_rejects_unknown_backend(self, dataset):
        with pytest.raises(QueryError):
            QueryService(dataset.graph, dataset.calendars, backend="fork")

    def test_worker_defaults(self):
        assert SerialBackend().workers == 1
        assert ThreadBackend(4).workers == 4
        assert ProcessBackend(3).workers == 3

    def test_service_exposes_backend(self, dataset):
        with QueryService(dataset.graph, backend="serial") as service:
            assert service.backend_name == "serial"
            assert service.backend.workers == 1
            assert service.max_workers == 1


class TestLifecycleSafetyNets:
    def test_thread_pool_released_without_close(self, dataset):
        import gc
        import threading
        import time as time_mod

        def pool_threads():
            return [t for t in threading.enumerate() if t.name.startswith("stgq-worker")]

        service = QueryService(dataset.graph, dataset.calendars, max_workers=2)
        batch = build_batch(dataset, seed=5, n_queries=8, n_initiators=4, stg_fraction=0.0)
        service.solve_many(batch)
        assert pool_threads()  # persistent pool is live
        del service
        gc.collect()
        deadline = time_mod.monotonic() + 5.0
        while pool_threads() and time_mod.monotonic() < deadline:
            time_mod.sleep(0.01)
        assert not pool_threads()  # finalizer shut the pool down

    def test_failed_batch_never_partially_counted(self, dataset):
        # One query with an unknown initiator makes its shard raise; the
        # whole batch must be invisible in the parent stats (all-or-nothing),
        # not a partial merge of the shards that happened to succeed.
        good = build_batch(dataset, seed=9, n_queries=8, n_initiators=4, stg_fraction=0.0)
        bad = SGQuery(initiator=99999, group_size=3, radius=1, acquaintance=1)
        with QueryService(
            dataset.graph, dataset.calendars, max_workers=2, backend="process"
        ) as service:
            with pytest.raises(Exception):
                service.solve_many(good + [bad])
            assert service.stats().queries == 0
            # The service still works after the failed batch.
            results = service.solve_many(good)
            assert service.stats().queries == len(good)
        assert len(results) == len(good)
