"""Tests for the batched :class:`repro.service.QueryService`."""

import pytest

from repro.core import SearchParameters, SGQuery, SGSelect, STGQuery, STGSelect
from repro.exceptions import QueryError
from repro.service import QueryService

from ..conftest import make_random_calendars, make_random_graph


@pytest.fixture
def service_setup():
    graph = make_random_graph(7, n=14, edge_prob=0.4)
    calendars = make_random_calendars(11, list(graph), horizon=12, availability=0.6)
    return graph, calendars


class TestSolve:
    def test_sg_matches_direct_solver(self, service_setup):
        graph, calendars = service_setup
        query = SGQuery(initiator=0, group_size=4, radius=2, acquaintance=1)
        service = QueryService(graph, calendars)
        direct = SGSelect(graph).solve(query)
        served = service.solve(query)
        assert served.members == direct.members
        assert served.total_distance == direct.total_distance

    def test_stg_matches_direct_solver(self, service_setup):
        graph, calendars = service_setup
        query = STGQuery(initiator=0, group_size=3, radius=2, acquaintance=1, activity_length=2)
        service = QueryService(graph, calendars)
        direct = STGSelect(graph, calendars).solve(query)
        served = service.solve(query)
        assert served.members == direct.members
        assert served.total_distance == direct.total_distance
        assert served.period == direct.period

    def test_stg_requires_calendars(self, service_setup):
        graph, _ = service_setup
        service = QueryService(graph)
        query = STGQuery(initiator=0, group_size=3, radius=1, acquaintance=1, activity_length=2)
        with pytest.raises(QueryError):
            service.solve(query)

    def test_rejects_unknown_query_type(self, service_setup):
        graph, calendars = service_setup
        service = QueryService(graph, calendars)
        with pytest.raises(QueryError):
            service.solve("not a query")

    def test_reference_kernel_service(self, service_setup):
        graph, calendars = service_setup
        query = SGQuery(initiator=0, group_size=4, radius=2, acquaintance=1)
        compiled = QueryService(graph, calendars).solve(query)
        reference = QueryService(
            graph, calendars, parameters=SearchParameters(kernel="reference")
        ).solve(query)
        assert reference.members == compiled.members
        assert reference.total_distance == compiled.total_distance


class TestCache:
    def test_repeat_initiator_hits_cache(self, service_setup):
        graph, calendars = service_setup
        service = QueryService(graph, calendars)
        for p in (3, 4, 5):
            service.solve(SGQuery(initiator=0, group_size=p, radius=2, acquaintance=1))
        info = service.cache_info()
        assert info.misses == 1
        assert info.hits == 2
        assert info.size == 1
        assert info.hit_rate == pytest.approx(2 / 3)

    def test_distinct_radius_is_distinct_entry(self, service_setup):
        graph, calendars = service_setup
        service = QueryService(graph, calendars)
        service.solve(SGQuery(initiator=0, group_size=3, radius=1, acquaintance=1))
        service.solve(SGQuery(initiator=0, group_size=3, radius=2, acquaintance=1))
        info = service.cache_info()
        assert info.misses == 2
        assert info.size == 2

    def test_lru_eviction(self, service_setup):
        graph, calendars = service_setup
        service = QueryService(graph, calendars, cache_size=2)
        for initiator in (0, 1, 2):
            service.solve(SGQuery(initiator=initiator, group_size=3, radius=1, acquaintance=1))
        info = service.cache_info()
        assert info.size == 2
        # Initiator 0 was evicted; querying it again misses.
        service.solve(SGQuery(initiator=0, group_size=3, radius=1, acquaintance=1))
        assert service.cache_info().misses == 4

    def test_clear_cache(self, service_setup):
        graph, calendars = service_setup
        service = QueryService(graph, calendars)
        service.solve(SGQuery(initiator=0, group_size=3, radius=1, acquaintance=1))
        service.clear_cache()
        assert service.cache_info().size == 0
        service.solve(SGQuery(initiator=0, group_size=3, radius=1, acquaintance=1))
        assert service.cache_info().misses == 2

    def test_cache_size_validation(self, service_setup):
        graph, calendars = service_setup
        with pytest.raises(QueryError):
            QueryService(graph, calendars, cache_size=0)

    def test_shared_cache_across_query_kinds(self, service_setup):
        graph, calendars = service_setup
        service = QueryService(graph, calendars)
        service.solve(SGQuery(initiator=0, group_size=3, radius=2, acquaintance=1))
        service.solve(
            STGQuery(initiator=0, group_size=3, radius=2, acquaintance=1, activity_length=2)
        )
        info = service.cache_info()
        assert info.misses == 1
        assert info.hits == 1


class TestSolveMany:
    def _batch(self, graph):
        return [
            SGQuery(initiator=initiator, group_size=p, radius=2, acquaintance=1)
            for initiator in (0, 1, 2, 3)
            for p in (3, 4, 5)
        ]

    def test_results_in_submission_order(self, service_setup):
        graph, calendars = service_setup
        queries = self._batch(graph)
        service = QueryService(graph, calendars, max_workers=4)
        results = service.solve_many(queries)
        assert len(results) == len(queries)
        sequential = [SGSelect(graph).solve(q) for q in queries]
        for got, want in zip(results, sequential):
            assert got.feasible == want.feasible
            assert got.members == want.members
            assert got.total_distance == want.total_distance

    def test_single_worker_path(self, service_setup):
        graph, calendars = service_setup
        queries = self._batch(graph)
        service = QueryService(graph, calendars, max_workers=1)
        results = service.solve_many(queries)
        assert [r.members for r in results] == [
            SGSelect(graph).solve(q).members for q in queries
        ]

    def test_empty_batch(self, service_setup):
        graph, calendars = service_setup
        assert QueryService(graph, calendars).solve_many([]) == []

    def test_mixed_batch(self, service_setup):
        graph, calendars = service_setup
        queries = [
            SGQuery(initiator=0, group_size=3, radius=2, acquaintance=1),
            STGQuery(initiator=0, group_size=3, radius=2, acquaintance=1, activity_length=2),
        ]
        service = QueryService(graph, calendars)
        sg_result, stg_result = service.solve_many(queries)
        assert sg_result.solver == "SGSelect"
        assert stg_result.solver == "STGSelect"
        stats = service.stats()
        assert stats.sg_queries == 1
        assert stats.stg_queries == 1


class TestStats:
    def test_counters_accumulate(self, service_setup):
        graph, calendars = service_setup
        service = QueryService(graph, calendars)
        queries = [
            SGQuery(initiator=initiator, group_size=3, radius=1, acquaintance=1)
            for initiator in (0, 1, 0)
        ]
        results = service.solve_many(queries, max_workers=2)
        stats = service.stats()
        assert stats.queries == 3
        assert stats.sg_queries == 3
        assert stats.feasible == sum(1 for r in results if r.feasible)
        assert stats.infeasible == 3 - stats.feasible
        assert stats.solve_seconds >= 0.0
        assert isinstance(stats.as_dict(), dict)

    def test_stats_returns_copy(self, service_setup):
        graph, calendars = service_setup
        service = QueryService(graph, calendars)
        snapshot = service.stats()
        service.solve(SGQuery(initiator=0, group_size=3, radius=1, acquaintance=1))
        assert snapshot.queries == 0
        assert service.stats().queries == 1
