"""Tests for the batched :class:`repro.service.QueryService`."""

import threading

import pytest

from repro.core import SearchParameters, SGQuery, SGSelect, STGQuery, STGSelect
from repro.exceptions import QueryError
from repro.graph import SocialGraph
from repro.service import QueryService

from ..conftest import make_random_calendars, make_random_graph


@pytest.fixture
def service_setup():
    graph = make_random_graph(7, n=14, edge_prob=0.4)
    calendars = make_random_calendars(11, list(graph), horizon=12, availability=0.6)
    return graph, calendars


class TestSolve:
    def test_sg_matches_direct_solver(self, service_setup):
        graph, calendars = service_setup
        query = SGQuery(initiator=0, group_size=4, radius=2, acquaintance=1)
        service = QueryService(graph, calendars)
        direct = SGSelect(graph).solve(query)
        served = service.solve(query)
        assert served.members == direct.members
        assert served.total_distance == direct.total_distance

    def test_stg_matches_direct_solver(self, service_setup):
        graph, calendars = service_setup
        query = STGQuery(initiator=0, group_size=3, radius=2, acquaintance=1, activity_length=2)
        service = QueryService(graph, calendars)
        direct = STGSelect(graph, calendars).solve(query)
        served = service.solve(query)
        assert served.members == direct.members
        assert served.total_distance == direct.total_distance
        assert served.period == direct.period

    def test_stg_requires_calendars(self, service_setup):
        graph, _ = service_setup
        service = QueryService(graph)
        query = STGQuery(initiator=0, group_size=3, radius=1, acquaintance=1, activity_length=2)
        with pytest.raises(QueryError):
            service.solve(query)

    def test_rejects_unknown_query_type(self, service_setup):
        graph, calendars = service_setup
        service = QueryService(graph, calendars)
        with pytest.raises(QueryError):
            service.solve("not a query")

    def test_reference_kernel_service(self, service_setup):
        graph, calendars = service_setup
        query = SGQuery(initiator=0, group_size=4, radius=2, acquaintance=1)
        compiled = QueryService(graph, calendars).solve(query)
        reference = QueryService(
            graph, calendars, parameters=SearchParameters(kernel="reference")
        ).solve(query)
        assert reference.members == compiled.members
        assert reference.total_distance == compiled.total_distance

    def test_every_kernel_serves_identically(self, service_setup):
        """The service's cached forms (compiled + packed) feed every kernel.

        Solving the same mixed batch through one service per kernel must
        give identical results — this is the cache-entry plumbing test:
        the numpy kernel runs off the packed matrix built at cache-miss
        time, shared by both queries of the repeated initiator.
        """
        from repro.core import VALID_KERNELS

        graph, calendars = service_setup
        queries = [
            SGQuery(initiator=0, group_size=4, radius=2, acquaintance=1),
            STGQuery(initiator=0, group_size=3, radius=2, acquaintance=1, activity_length=2),
        ]
        per_kernel = {}
        for kernel in VALID_KERNELS:
            with QueryService(
                graph, calendars, parameters=SearchParameters(kernel=kernel)
            ) as service:
                results = service.solve_many(queries)
                info = service.cache_info()
            assert info.misses == 1 and info.hits == 1  # one shared ego network
            per_kernel[kernel] = [
                (r.members, r.total_distance, getattr(r, "period", None)) for r in results
            ]
        baseline = per_kernel["compiled"]
        for kernel, keys in per_kernel.items():
            assert keys == baseline, f"kernel {kernel} diverged through the service"


class TestCache:
    def test_repeat_initiator_hits_cache(self, service_setup):
        graph, calendars = service_setup
        service = QueryService(graph, calendars)
        for p in (3, 4, 5):
            service.solve(SGQuery(initiator=0, group_size=p, radius=2, acquaintance=1))
        info = service.cache_info()
        assert info.misses == 1
        assert info.hits == 2
        assert info.size == 1
        assert info.hit_rate == pytest.approx(2 / 3)

    def test_distinct_radius_is_distinct_entry(self, service_setup):
        graph, calendars = service_setup
        service = QueryService(graph, calendars)
        service.solve(SGQuery(initiator=0, group_size=3, radius=1, acquaintance=1))
        service.solve(SGQuery(initiator=0, group_size=3, radius=2, acquaintance=1))
        info = service.cache_info()
        assert info.misses == 2
        assert info.size == 2

    def test_lru_eviction(self, service_setup):
        graph, calendars = service_setup
        service = QueryService(graph, calendars, cache_size=2)
        for initiator in (0, 1, 2):
            service.solve(SGQuery(initiator=initiator, group_size=3, radius=1, acquaintance=1))
        info = service.cache_info()
        assert info.size == 2
        # Initiator 0 was evicted; querying it again misses.
        service.solve(SGQuery(initiator=0, group_size=3, radius=1, acquaintance=1))
        assert service.cache_info().misses == 4

    def test_clear_cache(self, service_setup):
        graph, calendars = service_setup
        service = QueryService(graph, calendars)
        service.solve(SGQuery(initiator=0, group_size=3, radius=1, acquaintance=1))
        service.clear_cache()
        assert service.cache_info().size == 0
        service.solve(SGQuery(initiator=0, group_size=3, radius=1, acquaintance=1))
        assert service.cache_info().misses == 2

    def test_cache_size_validation(self, service_setup):
        graph, calendars = service_setup
        with pytest.raises(QueryError):
            QueryService(graph, calendars, cache_size=0)


def _mutable_graph():
    """Tiny graph where a later mutation changes the optimal group.

    ``SGQ(p=2, s=1, k=0)`` from ``0`` initially selects ``"far"`` (distance
    5); after ``add_edge(0, "near", 1)`` the fresh answer is ``"near"`` —
    but only if the cached ego network was actually dropped.
    """
    graph = SocialGraph()
    graph.add_edge(0, "far", 5.0)
    graph.add_vertex("near")
    return graph


MUTATION_QUERY = SGQuery(initiator=0, group_size=2, radius=1, acquaintance=0)


class TestClearCacheInvalidation:
    """clear_cache() + a mutated-graph reload must serve fresh results."""

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_mutated_graph_reload_in_process_backends(self, backend):
        graph = _mutable_graph()
        with QueryService(graph, backend=backend, max_workers=2) as service:
            before = service.solve(MUTATION_QUERY)
            assert before.members == {0, "far"}
            graph.add_edge(0, "near", 1.0)
            # Without the clear the stale ego network keeps answering.
            assert service.solve(MUTATION_QUERY).members == {0, "far"}
            service.clear_cache()
            after = service.solve(MUTATION_QUERY)
            assert after.members == {0, "near"}
            assert after.total_distance == 1.0

    def test_inflight_build_does_not_reinsert_stale_entry(self, monkeypatch):
        """A build racing clear_cache() must not resurrect its entry.

        The build is paused deterministically with events: it starts, the
        cache is cleared mid-build, the build finishes — its caller still
        gets an answer, but the (pre-clear) entry must not be inserted, and
        the next lookup must rebuild from the current graph.
        """
        import repro.service.query_service as qs_module

        graph, calendars = make_random_graph(7, n=10, edge_prob=0.4), None
        service = QueryService(graph, calendars, backend="serial")
        started = threading.Event()
        release = threading.Event()
        real_extract = qs_module.extract_query_forms

        def paused_extract(g, initiator, radius, kernel):
            started.set()
            assert release.wait(10), "test deadlock: build never released"
            return real_extract(g, initiator, radius, kernel)

        monkeypatch.setattr(qs_module, "extract_query_forms", paused_extract)
        query = SGQuery(initiator=0, group_size=3, radius=2, acquaintance=1)
        results = []
        worker = threading.Thread(target=lambda: results.append(service.solve(query)))
        worker.start()
        assert started.wait(10), "build never started"
        service.clear_cache()  # races the in-flight build
        release.set()
        worker.join(10)
        assert not worker.is_alive()
        assert results and results[0].solver == "SGSelect"
        # The stale entry must not have been re-inserted ...
        assert service.cache_info().size == 0
        # ... and the next solve is a fresh miss that does get cached.
        service.solve(query)
        info = service.cache_info()
        assert info.size == 1
        assert info.misses == 2
        assert info.hits == 0

    def test_waiter_blocked_on_cleared_build_recovers(self, monkeypatch):
        """_pending_builds events must not strand waiters across a clear.

        A second caller waiting on the paused build must, after the clear,
        rebuild instead of adopting the stale result — both lookups count
        as misses, never a hit on a cleared entry.
        """
        import repro.service.query_service as qs_module

        graph = make_random_graph(11, n=10, edge_prob=0.4)
        service = QueryService(graph, backend="serial")
        started = threading.Event()
        release = threading.Event()
        real_extract = qs_module.extract_query_forms

        def paused_extract(g, initiator, radius, kernel):
            started.set()
            assert release.wait(10), "test deadlock: build never released"
            return real_extract(g, initiator, radius, kernel)

        monkeypatch.setattr(qs_module, "extract_query_forms", paused_extract)
        query = SGQuery(initiator=0, group_size=3, radius=2, acquaintance=1)
        threads = [
            threading.Thread(target=service.solve, args=(query,)) for _ in range(2)
        ]
        threads[0].start()
        assert started.wait(10)
        threads[1].start()  # becomes either a waiter or, post-clear, a builder
        service.clear_cache()
        release.set()
        for thread in threads:
            thread.join(10)
            assert not thread.is_alive()
        info = service.cache_info()
        assert info.hits == 0
        assert info.misses == 2
        assert info.size == 1  # the post-clear rebuild was cached normally

    def test_shared_cache_across_query_kinds(self, service_setup):
        graph, calendars = service_setup
        service = QueryService(graph, calendars)
        service.solve(SGQuery(initiator=0, group_size=3, radius=2, acquaintance=1))
        service.solve(
            STGQuery(initiator=0, group_size=3, radius=2, acquaintance=1, activity_length=2)
        )
        info = service.cache_info()
        assert info.misses == 1
        assert info.hits == 1


class TestSolveMany:
    def _batch(self, graph):
        return [
            SGQuery(initiator=initiator, group_size=p, radius=2, acquaintance=1)
            for initiator in (0, 1, 2, 3)
            for p in (3, 4, 5)
        ]

    def test_results_in_submission_order(self, service_setup):
        graph, calendars = service_setup
        queries = self._batch(graph)
        service = QueryService(graph, calendars, max_workers=4)
        results = service.solve_many(queries)
        assert len(results) == len(queries)
        sequential = [SGSelect(graph).solve(q) for q in queries]
        for got, want in zip(results, sequential):
            assert got.feasible == want.feasible
            assert got.members == want.members
            assert got.total_distance == want.total_distance

    def test_single_worker_path(self, service_setup):
        graph, calendars = service_setup
        queries = self._batch(graph)
        service = QueryService(graph, calendars, max_workers=1)
        results = service.solve_many(queries)
        assert [r.members for r in results] == [
            SGSelect(graph).solve(q).members for q in queries
        ]

    def test_empty_batch(self, service_setup):
        graph, calendars = service_setup
        assert QueryService(graph, calendars).solve_many([]) == []

    def test_mixed_batch(self, service_setup):
        graph, calendars = service_setup
        queries = [
            SGQuery(initiator=0, group_size=3, radius=2, acquaintance=1),
            STGQuery(initiator=0, group_size=3, radius=2, acquaintance=1, activity_length=2),
        ]
        service = QueryService(graph, calendars)
        sg_result, stg_result = service.solve_many(queries)
        assert sg_result.solver == "SGSelect"
        assert stg_result.solver == "STGSelect"
        stats = service.stats()
        assert stats.sg_queries == 1
        assert stats.stg_queries == 1


class TestStats:
    def test_counters_accumulate(self, service_setup):
        graph, calendars = service_setup
        service = QueryService(graph, calendars)
        queries = [
            SGQuery(initiator=initiator, group_size=3, radius=1, acquaintance=1)
            for initiator in (0, 1, 0)
        ]
        results = service.solve_many(queries, max_workers=2)
        stats = service.stats()
        assert stats.queries == 3
        assert stats.sg_queries == 3
        assert stats.feasible == sum(1 for r in results if r.feasible)
        assert stats.infeasible == 3 - stats.feasible
        assert stats.solve_seconds >= 0.0
        assert isinstance(stats.as_dict(), dict)

    def test_stats_returns_copy(self, service_setup):
        graph, calendars = service_setup
        service = QueryService(graph, calendars)
        snapshot = service.stats()
        service.solve(SGQuery(initiator=0, group_size=3, radius=1, acquaintance=1))
        assert snapshot.queries == 0
        assert service.stats().queries == 1
