"""Network cluster subsystem tests: protocol, worker server, RemoteBackend.

The property test mirrors ``test_backends.py``: for any seeded workload the
``remote`` backend must return identical results *and* identical merged
aggregate stats to ``serial`` — the contract that makes going multi-node a
pure deployment decision.  Failure containment is covered by a worker-kill
test: requests routed to a dead worker degrade to per-request error
results, and the shard recovers once the worker is back.
"""

import asyncio
import math
import socket
import struct
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SGQuery, STGQuery
from repro.core.result import GroupResult, SearchStats, STGroupResult
from repro.exceptions import ProtocolError, QueryError, WorkerUnavailableError
from repro.experiments.workloads import workload
from repro.service import (
    ErrorResult,
    PlacementMap,
    QueryService,
    RemoteBackend,
    build_placement,
    make_backend,
)
from repro.service.codec import (
    decode_result,
    encode_result,
    query_from_request,
    request_for,
    response_for,
)
from repro.service.net import WorkerServer, parse_addresses
from repro.service.net.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.service.sharding import stable_shard
from repro.temporal.slots import SlotRange

from .test_backends import DETERMINISTIC_COUNTERS, build_batch, run_backend
from .test_placement import SOLVER_COUNTERS


@pytest.fixture(scope="module")
def dataset():
    """Seeded 60-person workload shared by every test in this module."""
    return workload(network_size=60, schedule_days=1, seed=7)


# ----------------------------------------------------------------------
# in-process worker harness (one asyncio loop per worker, on a thread)
# ----------------------------------------------------------------------
class WorkerHarness:
    """A real WorkerServer + QueryService running on a background thread."""

    def __init__(self, dataset, port: int = 0, backend: str = "serial", placement=None) -> None:
        self.service = QueryService(dataset.graph, dataset.calendars, backend=backend)
        self.loop = asyncio.new_event_loop()
        self.server = WorkerServer(self.service, "127.0.0.1", port, placement=placement)
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self._started.set()
        self.loop.run_forever()
        self.loop.close()

    def start(self) -> "WorkerHarness":
        self._thread.start()
        assert self._started.wait(10), "worker server failed to start"
        return self

    @property
    def address(self) -> str:
        return self.server.address

    @property
    def port(self) -> int:
        return self.server.port

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(self.server.aclose(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(10)
        self.service.close()


@pytest.fixture
def worker_pair(dataset):
    workers = [WorkerHarness(dataset).start() for _ in range(2)]
    yield workers
    for worker in workers:
        try:
            worker.stop()
        except Exception:
            pass


def _client_socket(address: str, timeout: float = 5.0) -> socket.socket:
    host, _, port = address.rpartition(":")
    sock = socket.create_connection((host, int(port)), timeout=timeout)
    sock.settimeout(timeout)
    return sock


# ----------------------------------------------------------------------
# framing + codec units
# ----------------------------------------------------------------------
class TestFraming:
    def test_oversized_frame_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_announced_oversized_frame_rejected_before_read(self, worker_pair):
        sock = _client_socket(worker_pair[0].address)
        try:
            sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            assert "byte" in reply["error"]
        finally:
            sock.close()

    def test_non_object_frame_rejected(self, worker_pair):
        sock = _client_socket(worker_pair[0].address)
        try:
            body = b"[1,2,3]"
            sock.sendall(struct.pack(">I", len(body)) + body)
            reply = recv_frame(sock)
            assert reply["type"] == "error"
        finally:
            sock.close()


class TestResultCodec:
    def test_sg_roundtrip(self):
        result = GroupResult(
            feasible=True,
            members=frozenset([1, 5, 9]),
            total_distance=4.5,
            solver="SGSelect",
            stats=SearchStats(nodes_expanded=17, elapsed_seconds=0.25),
        )
        decoded = decode_result(encode_result(result))
        assert decoded == result

    def test_stg_roundtrip_with_period(self):
        result = STGroupResult(
            feasible=True,
            members=frozenset([2, 3]),
            total_distance=1.0,
            period=SlotRange(4, 7),
            pivot=4,
            shared_slots=SlotRange(2, 9),
            solver="STGSelect",
            stats=SearchStats(pivots_processed=3),
        )
        decoded = decode_result(encode_result(result))
        assert decoded == result

    def test_infeasible_inf_distance_roundtrip(self):
        result = GroupResult.infeasible(solver="SGSelect")
        payload = encode_result(result)
        assert payload["total_distance"] is None  # JSON has no Infinity
        decoded = decode_result(payload)
        assert decoded.total_distance == math.inf
        assert decoded == result

    def test_query_request_roundtrip(self):
        sgq = SGQuery(initiator=9, group_size=4, radius=2, acquaintance=1)
        stgq = STGQuery(initiator=9, group_size=4, radius=2, acquaintance=1, activity_length=3)
        assert query_from_request(request_for(sgq)) == sgq
        assert query_from_request(request_for(stgq)) == stgq

    def test_error_result_renders_as_error_response(self):
        payload = response_for(7, ErrorResult(error="worker down"))
        assert payload == {"id": 7, "error": "worker down"}

    def test_malformed_result_payload_rejected(self):
        with pytest.raises(QueryError):
            decode_result({"kind": "nope"})
        with pytest.raises(QueryError):
            decode_result([1, 2])
        with pytest.raises(QueryError):
            decode_result({"kind": "sg", "feasible": True})  # missing fields


class TestAddressParsing:
    def test_spec_string(self):
        assert parse_addresses("a:1,b:2") == [("a", 1), ("b", 2)]

    def test_iterables_and_pairs(self):
        assert parse_addresses([("h", 9), "x:3"]) == [("h", 9), ("x", 3)]

    def test_rejects_bad_specs(self):
        for spec in ("", "no-port", "h:notaport", "h:0", "h:70000"):
            with pytest.raises(QueryError):
                parse_addresses(spec)

    def test_make_backend_remote(self):
        backend = make_backend("remote", connect="127.0.0.1:9001,127.0.0.1:9002")
        assert isinstance(backend, RemoteBackend)
        assert backend.workers == 2
        with pytest.raises(QueryError):
            make_backend("remote")  # no addresses


# ----------------------------------------------------------------------
# control frames against a live worker
# ----------------------------------------------------------------------
class TestControlFrames:
    def test_hello_ping_stats(self, worker_pair, dataset):
        sock = _client_socket(worker_pair[0].address)
        try:
            send_frame(sock, {"type": "hello", "v": PROTOCOL_VERSION})
            hello = recv_frame(sock)
            assert hello["type"] == "hello"
            assert hello["v"] == PROTOCOL_VERSION
            assert hello["backend"] == "serial"
            assert hello["graph_size"] == dataset.graph.vertex_count

            send_frame(sock, {"type": "ping", "id": "abc"})
            pong = recv_frame(sock)
            assert pong == {"type": "pong", "id": "abc"}

            send_frame(sock, {"type": "stats"})
            stats = recv_frame(sock)
            assert stats["type"] == "stats"
            assert set(DETERMINISTIC_COUNTERS) <= set(stats["stats"])
            assert {"hits", "misses", "size", "max_size"} <= set(stats["cache"])
        finally:
            sock.close()

    def test_version_mismatch_refused(self, worker_pair):
        sock = _client_socket(worker_pair[0].address)
        try:
            send_frame(sock, {"type": "hello", "v": PROTOCOL_VERSION + 1})
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            assert "version" in reply["error"]
        finally:
            sock.close()

    def test_unknown_frame_type_keeps_connection(self, worker_pair):
        sock = _client_socket(worker_pair[0].address)
        try:
            send_frame(sock, {"type": "teleport", "id": 3})
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            assert reply["id"] == 3
            send_frame(sock, {"type": "ping", "id": 4})  # still served
            assert recv_frame(sock)["type"] == "pong"
        finally:
            sock.close()

    def test_batch_with_bad_request_entries(self, worker_pair, dataset):
        sock = _client_socket(worker_pair[0].address)
        try:
            send_frame(sock, {"type": "hello", "v": PROTOCOL_VERSION})
            recv_frame(sock)
            requests = [
                request_for(SGQuery(initiator=dataset.people[0], group_size=3, radius=1,
                                    acquaintance=1)),
                {"group_size": 4},  # missing initiator
                {"initiator": 999999, "group_size": 3},  # not in graph
            ]
            send_frame(sock, {"type": "batch", "id": 1, "requests": requests})
            reply = recv_frame(sock)
            assert reply["type"] == "batch_result"
            results = reply["results"]
            assert "kind" in results[0]
            assert "error" in results[1] and "initiator" in results[1]["error"]
            assert "error" in results[2] and "999999" in results[2]["error"]
            # Only the solved query is in the delta.
            assert reply["stats_delta"]["queries"] == 1
        finally:
            sock.close()


# ----------------------------------------------------------------------
# cache invalidation across the wire (acceptance criterion)
# ----------------------------------------------------------------------
class _MiniDataset:
    """Just enough dataset surface for a WorkerHarness."""

    def __init__(self, graph, calendars=None):
        self.graph = graph
        self.calendars = calendars


class TestRemoteCacheClear:
    def test_cache_clear_control_frame(self, worker_pair, dataset):
        """The raw wire contract: cache_clear empties the worker's cache."""
        sock = _client_socket(worker_pair[0].address)
        try:
            send_frame(sock, {"type": "hello", "v": PROTOCOL_VERSION})
            recv_frame(sock)
            query = SGQuery(
                initiator=dataset.people[0], group_size=3, radius=1, acquaintance=1
            )
            send_frame(sock, {"type": "batch", "id": 1, "requests": [request_for(query)]})
            assert recv_frame(sock)["cache_size"] == 1
            send_frame(sock, {"type": "cache_clear", "id": 2})
            assert recv_frame(sock) == {"type": "cache_cleared", "id": 2}
            send_frame(sock, {"type": "stats"})
            assert recv_frame(sock)["cache"]["size"] == 0
        finally:
            sock.close()

    def test_mutated_graph_reload_on_remote_backend(self):
        """Regression: clear_cache() on a gateway must reach TCP workers.

        The worker shares the test's graph object (in-process harness), so
        after the mutation only its ego-network cache is stale — exactly
        the production hazard: without the cache_clear frame it keeps
        serving the pre-change network forever.
        """
        from repro.graph import SocialGraph

        graph = SocialGraph()
        graph.add_edge(0, "far", 5.0)
        graph.add_vertex("near")
        harness = WorkerHarness(_MiniDataset(graph)).start()
        try:
            backend = RemoteBackend([harness.address])
            query = SGQuery(initiator=0, group_size=2, radius=1, acquaintance=0)
            with QueryService(graph, backend=backend) as gateway:
                assert gateway.solve(query).members == {0, "far"}
                graph.add_edge(0, "near", 1.0)
                # The worker's private cache still answers pre-change.
                assert gateway.solve(query).members == {0, "far"}
                gateway.clear_cache()
                fresh = gateway.solve(query)
                assert fresh.members == {0, "near"}
                assert fresh.total_distance == 1.0
        finally:
            harness.stop()

    def test_clear_cache_bypasses_reconnect_backoff(self, worker_pair, dataset):
        """A link parked in its fail-fast window must still be attempted.

        The backoff bounds *batch* latency while a worker is down; an
        invalidation against a worker that already recovered must not be
        skipped because its last failure was recent.
        """
        backend = RemoteBackend([worker_pair[0].address])
        with QueryService(dataset.graph, dataset.calendars, backend=backend) as gateway:
            query = SGQuery(
                initiator=dataset.people[0], group_size=3, radius=1, acquaintance=1
            )
            gateway.solve(query)
            # Park the (healthy) link deep in a fail-fast window.
            link = backend._links[0]
            for _ in range(8):
                link._register_failure()
            gateway.clear_cache()  # must attempt (and succeed) anyway
            stats = backend.worker_stats()[0]
            assert stats is not None and stats["cache"]["size"] == 0

    def test_clear_cache_raises_when_worker_unreachable(self):
        """Invalidation must not silently no-op against a dead worker."""
        from repro.graph import SocialGraph

        graph = SocialGraph()
        graph.add_edge(0, 1, 1.0)
        backend = RemoteBackend(["127.0.0.1:9"], timeout=0.5, connect_timeout=0.3)
        with QueryService(graph, backend=backend) as service:
            with pytest.raises(WorkerUnavailableError, match="cache clear incomplete"):
                service.clear_cache()


# ----------------------------------------------------------------------
# RemoteBackend equivalence (acceptance criterion)
# ----------------------------------------------------------------------
class TestRemoteEquivalence:
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        n_queries=st.integers(min_value=4, max_value=24),
        n_initiators=st.integers(min_value=2, max_value=8),
        stg_fraction=st.sampled_from([0.0, 0.3, 1.0]),
    )
    def test_remote_agrees_with_serial_on_results_and_stats(
        self, dataset, seed, n_queries, n_initiators, stg_fraction
    ):
        batch = build_batch(dataset, seed, n_queries, n_initiators, stg_fraction)
        reference_keys, reference_counters, reference_info = run_backend(
            dataset, "serial", batch
        )
        # Fresh workers per example: worker-side caches must start cold for
        # the hit/miss counters to be comparable with the serial reference.
        workers = [WorkerHarness(dataset).start() for _ in range(2)]
        try:
            backend = RemoteBackend([w.address for w in workers], timeout=30.0)
            keys, counters, info = run_backend(dataset, backend, batch)
        finally:
            for worker in workers:
                worker.stop()
        assert keys == reference_keys, "remote results diverged"
        assert counters == reference_counters, "remote stats diverged"
        assert (info.hits, info.misses) == (reference_info.hits, reference_info.misses)
        assert info.size == reference_info.size

    def test_single_solve_routes_remotely(self, worker_pair, dataset):
        query = SGQuery(initiator=dataset.people[3], group_size=4, radius=2, acquaintance=1)
        with QueryService(dataset.graph, dataset.calendars, backend="serial") as reference:
            expected = reference.solve(query)
        backend = RemoteBackend([w.address for w in worker_pair])
        with QueryService(dataset.graph, dataset.calendars, backend=backend) as service:
            result = service.solve(query)
            assert service.backend_name == "remote"
        assert result.members == expected.members
        assert result.total_distance == expected.total_distance

    def test_unknown_initiator_raises_like_local_backends(self, worker_pair, dataset):
        # The drop-in contract covers failure shapes too: an unknown
        # initiator raises at validation on every backend rather than
        # degrading to an in-band error result on remote only.
        from repro.exceptions import VertexNotFoundError

        bad = SGQuery(initiator=999999, group_size=3, radius=1, acquaintance=1)
        backend = RemoteBackend([w.address for w in worker_pair])
        with QueryService(dataset.graph, dataset.calendars, backend=backend) as service:
            with pytest.raises(VertexNotFoundError):
                service.solve(bad)
        with QueryService(dataset.graph, dataset.calendars, backend="serial") as service:
            with pytest.raises(VertexNotFoundError):
                service.solve(bad)

    def test_worker_stats_snapshots(self, worker_pair, dataset):
        backend = RemoteBackend([w.address for w in worker_pair])
        batch = build_batch(dataset, seed=5, n_queries=10, n_initiators=4, stg_fraction=0.0)
        with QueryService(dataset.graph, dataset.calendars, backend=backend) as service:
            service.solve_many(batch)
            snapshots = backend.worker_stats()
            assert len(snapshots) == 2
            assert all(s is not None and s["type"] == "stats" for s in snapshots)
            assert sum(s["stats"]["queries"] for s in snapshots) == len(batch)


# ----------------------------------------------------------------------
# failure containment + recovery (acceptance criterion)
# ----------------------------------------------------------------------
class TestWorkerFailure:
    def test_dead_worker_yields_per_request_errors_then_recovers(self, dataset):
        workers = [WorkerHarness(dataset).start() for _ in range(2)]
        backend = RemoteBackend(
            [w.address for w in workers],
            timeout=10.0,
            connect_timeout=2.0,
            backoff_base=0.01,
            backoff_cap=0.05,
        )
        victim_port = workers[0].port
        batch = build_batch(dataset, seed=11, n_queries=16, n_initiators=6, stg_fraction=0.3)
        dead_shard_size = sum(
            1 for query in batch if stable_shard(query.initiator, 2) == 0
        )
        restarted = None
        try:
            with QueryService(dataset.graph, dataset.calendars, backend=backend) as service:
                first = service.solve_many(batch)
                assert not any(getattr(r, "error", None) for r in first)
                healthy_queries = service.stats().queries

                workers[0].stop()
                second = service.solve_many(batch)
                errors = [r for r in second if getattr(r, "error", None)]
                fine = [r for r in second if not getattr(r, "error", None)]
                assert len(errors) == dead_shard_size
                assert len(fine) == len(batch) - dead_shard_size
                for error in errors:
                    assert error.feasible is False
                    assert "worker 127.0.0.1" in error.error
                # Only the healthy shard's queries were counted (all-or-nothing
                # per shard, never a partial merge from the dead one).
                assert service.stats().queries == healthy_queries + len(fine)

                # Restart on the same port; after the backoff window the link
                # reconnects and the batch is fully served again.
                restarted = WorkerHarness(dataset, port=victim_port).start()
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    time.sleep(0.06)  # let the fail-fast window expire
                    third = service.solve_many(batch)
                    if not any(getattr(r, "error", None) for r in third):
                        break
                else:
                    pytest.fail("remote backend never recovered after worker restart")
                keys = [(r.feasible, r.members, r.total_distance) for r in third]
                expected = [(r.feasible, r.members, r.total_distance) for r in first]
                assert keys == expected
        finally:
            for worker in [workers[1]] + ([restarted] if restarted else []):
                try:
                    worker.stop()
                except Exception:
                    pass

    def test_all_workers_down_degrades_not_raises(self, dataset):
        # Nothing is listening on these ports: every request degrades.
        backend = RemoteBackend(
            "127.0.0.1:1,127.0.0.1:2",
            timeout=1.0,
            connect_timeout=0.2,
            backoff_base=0.01,
            backoff_cap=0.05,
        )
        batch = build_batch(dataset, seed=2, n_queries=6, n_initiators=3, stg_fraction=0.0)
        with QueryService(dataset.graph, dataset.calendars, backend=backend) as service:
            results = service.solve_many(batch)
            assert len(results) == len(batch)
            assert all(isinstance(r, ErrorResult) for r in results)
            assert service.stats().queries == 0

    def test_slow_worker_times_out_per_request(self, dataset):
        # A stub worker that handshakes correctly but never answers batches.
        ready = threading.Event()
        bound = {}

        def stall_server():
            listener = socket.socket()
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            bound["port"] = listener.getsockname()[1]
            ready.set()
            conn, _ = listener.accept()
            try:
                recv_frame(conn)
                send_frame(conn, {"type": "hello", "v": PROTOCOL_VERSION})
                recv_frame(conn)  # the batch frame: swallow it and stall
                time.sleep(5.0)
            except Exception:
                pass
            finally:
                conn.close()
                listener.close()

        thread = threading.Thread(target=stall_server, daemon=True)
        thread.start()
        assert ready.wait(5)
        backend = RemoteBackend(
            [("127.0.0.1", bound["port"])], timeout=0.3, connect_timeout=2.0
        )
        query = SGQuery(initiator=dataset.people[0], group_size=3, radius=1, acquaintance=1)
        with QueryService(dataset.graph, dataset.calendars, backend=backend) as service:
            result = service.solve(query)
        assert isinstance(result, ErrorResult)
        assert "timed out" in result.error

    def test_dribbling_worker_bounded_by_deadline_not_per_recv(self, dataset):
        # A degraded worker that keeps trickling bytes resets a naive
        # per-recv timeout forever; the round-trip deadline must fire.
        ready = threading.Event()
        bound = {}

        def dribble_server():
            listener = socket.socket()
            listener.bind(("127.0.0.1", 0))
            listener.listen(1)
            bound["port"] = listener.getsockname()[1]
            ready.set()
            conn, _ = listener.accept()
            try:
                recv_frame(conn)
                send_frame(conn, {"type": "hello", "v": PROTOCOL_VERSION})
                recv_frame(conn)  # the batch frame
                conn.sendall(struct.pack(">I", 64))  # announce a 64-byte body...
                for _ in range(20):  # ...then trickle it one byte at a time
                    conn.sendall(b"x")
                    time.sleep(0.15)
            except Exception:
                pass
            finally:
                conn.close()
                listener.close()

        thread = threading.Thread(target=dribble_server, daemon=True)
        thread.start()
        assert ready.wait(5)
        backend = RemoteBackend(
            [("127.0.0.1", bound["port"])], timeout=0.5, connect_timeout=2.0
        )
        query = SGQuery(initiator=dataset.people[0], group_size=3, radius=1, acquaintance=1)
        start = time.monotonic()
        with QueryService(dataset.graph, dataset.calendars, backend=backend) as service:
            result = service.solve(query)
        assert isinstance(result, ErrorResult)
        assert "timed out" in result.error
        assert time.monotonic() - start < 2.0  # deadline, not 20 * 0.15s of dribble

    def test_failed_solve_ships_no_stats_delta(self, worker_pair, dataset):
        # When the worker's solve blows up it answers every request with an
        # error — and must NOT ship the batch's stats delta, or the gateway
        # would count queries whose callers only saw ErrorResults.
        harness = worker_pair[0]

        async def explode(queries, **kwargs):
            raise RuntimeError("pool died")

        original = harness.service.solve_many_async
        harness.service.solve_many_async = explode
        try:
            sock = _client_socket(harness.address)
            try:
                send_frame(sock, {"type": "hello", "v": PROTOCOL_VERSION})
                recv_frame(sock)
                request = request_for(
                    SGQuery(initiator=dataset.people[0], group_size=3, radius=1, acquaintance=1)
                )
                send_frame(sock, {"type": "batch", "id": 1, "requests": [request]})
                reply = recv_frame(sock)
            finally:
                sock.close()
        finally:
            harness.service.solve_many_async = original
        assert reply["type"] == "batch_result"
        assert reply["results"] == [{"error": "pool died"}]
        assert reply["stats_delta"] == {}

    def test_link_backoff_fails_fast_while_down(self):
        backend = RemoteBackend(
            "127.0.0.1:1", timeout=1.0, connect_timeout=0.2, backoff_base=5.0, backoff_cap=5.0
        )
        link = backend._links[0]
        with pytest.raises(WorkerUnavailableError):
            link.request({"type": "ping", "id": 0})
        start = time.monotonic()
        with pytest.raises(WorkerUnavailableError) as excinfo:
            link.request({"type": "ping", "id": 1})
        assert time.monotonic() - start < 0.15  # no second connect attempt
        assert "backoff" in str(excinfo.value)
        backend.close()


# ----------------------------------------------------------------------
# subprocess cluster: the `stgq worker` CLI end-to-end
# ----------------------------------------------------------------------
class TestLocalCluster:
    def test_spawned_worker_answers_a_gateway(self):
        from repro.service.net import start_local_workers

        # Small population keeps the subprocess's dataset build fast; the
        # gateway must load the same seeded dataset for results to compare.
        gateway_dataset = workload(network_size=60, schedule_days=1, seed=7)
        with start_local_workers(1, people=60, days=1, seed=7) as cluster:
            assert len(cluster.addresses) == 1
            worker_processes = list(cluster.processes)
            backend = RemoteBackend(cluster.connect_spec(), timeout=30.0)
            query = SGQuery(
                initiator=gateway_dataset.people[0], group_size=3, radius=1, acquaintance=1
            )
            with QueryService(
                gateway_dataset.graph, gateway_dataset.calendars, backend=backend
            ) as service:
                remote_result = service.solve(query)
            with QueryService(
                gateway_dataset.graph, gateway_dataset.calendars, backend="serial"
            ) as reference:
                expected = reference.solve(query)
            assert not getattr(remote_result, "error", None)
            assert remote_result.members == expected.members
            assert remote_result.total_distance == expected.total_distance
        # Context exit terminated the worker subprocesses — gracefully: the
        # SIGTERM handler closes the server and the service, so the worker
        # exits 0 instead of dying on the signal.
        assert cluster.processes == []
        assert [process.returncode for process in worker_processes] == [0]


# ----------------------------------------------------------------------
# placement distribution frames (versioned PlacementMap over the wire)
# ----------------------------------------------------------------------
class TestPlacementFrames:
    def test_update_applied_noop_and_get(self, worker_pair):
        sock = _client_socket(worker_pair[0].address)
        try:
            send_frame(sock, {"type": "hello", "v": PROTOCOL_VERSION})
            hello = recv_frame(sock)
            assert hello["placement_version"] == 0  # fresh worker: CRC32 fallback

            v1 = PlacementMap(2, version=1)
            send_frame(sock, {"type": "placement_update", "id": 1, "map": v1.as_wire()})
            reply = recv_frame(sock)
            assert reply == {
                "type": "placement_applied", "id": 1, "status": "applied", "version": 1,
            }

            # Idempotent re-push: same version is a noop, not an error.
            send_frame(sock, {"type": "placement_update", "id": 2, "map": v1.as_wire()})
            assert recv_frame(sock)["status"] == "noop"

            v3 = PlacementMap(2, version=3)
            send_frame(sock, {"type": "placement_update", "id": 3, "map": v3.as_wire()})
            assert recv_frame(sock) == {
                "type": "placement_applied", "id": 3, "status": "applied", "version": 3,
            }

            # Strictly-newer-applies: a stale push cannot roll the map back.
            send_frame(sock, {"type": "placement_update", "id": 4, "map": v1.as_wire()})
            reply = recv_frame(sock)
            assert reply["status"] == "noop"
            assert reply["version"] == 3

            send_frame(sock, {"type": "placement_get", "id": 5})
            reply = recv_frame(sock)
            assert reply["type"] == "placement"
            assert reply["id"] == 5
            assert reply["version"] == 3
            assert PlacementMap.from_wire(reply["map"]).as_wire() == v3.as_wire()
        finally:
            sock.close()

    def test_junk_map_rejected_connection_kept(self, worker_pair):
        sock = _client_socket(worker_pair[0].address)
        try:
            send_frame(sock, {"type": "hello", "v": PROTOCOL_VERSION})
            recv_frame(sock)
            send_frame(
                sock, {"type": "placement_update", "id": 1, "map": {"n_shards": "two"}}
            )
            reply = recv_frame(sock)
            assert reply["type"] == "error"
            assert "placement rejected" in reply["error"]
            # The bad push neither stored anything nor dropped the session.
            send_frame(sock, {"type": "placement_get", "id": 2})
            reply = recv_frame(sock)
            assert reply["version"] == 0
            assert reply["map"] is None
        finally:
            sock.close()

    def test_worker_boots_holding_placement(self, dataset):
        placement = PlacementMap(2, version=7, assignments={dataset.people[0]: 1})
        harness = WorkerHarness(dataset, placement=placement).start()
        try:
            sock = _client_socket(harness.address)
            try:
                send_frame(sock, {"type": "hello", "v": PROTOCOL_VERSION})
                assert recv_frame(sock)["placement_version"] == 7
                send_frame(sock, {"type": "placement_get", "id": 1})
                reply = recv_frame(sock)
                assert reply["version"] == 7
                assert PlacementMap.from_wire(reply["map"]).as_wire() == placement.as_wire()
            finally:
                sock.close()
        finally:
            harness.stop()

    def test_batch_result_and_stats_advertise_version(self, worker_pair, dataset):
        sock = _client_socket(worker_pair[1].address)
        try:
            send_frame(sock, {"type": "hello", "v": PROTOCOL_VERSION})
            recv_frame(sock)
            placement = PlacementMap(2, version=4)
            send_frame(
                sock, {"type": "placement_update", "id": 1, "map": placement.as_wire()}
            )
            recv_frame(sock)
            request = request_for(
                SGQuery(initiator=dataset.people[0], group_size=3, radius=1, acquaintance=1)
            )
            send_frame(sock, {"type": "batch", "id": 2, "requests": [request]})
            reply = recv_frame(sock)
            assert reply["type"] == "batch_result"
            assert reply["placement_version"] == 4  # piggybacked adoption signal
            send_frame(sock, {"type": "stats"})
            assert recv_frame(sock)["placement_version"] == 4
        finally:
            sock.close()


# ----------------------------------------------------------------------
# placement push + gateway adoption (versioned map across gateways)
# ----------------------------------------------------------------------
class TestPlacementDistribution:
    def test_update_placement_pushes_fleet_wide_then_noops(self, worker_pair):
        placement = PlacementMap(2, version=5)
        backend = RemoteBackend([w.address for w in worker_pair])
        try:
            assert backend.placement_version == 0
            statuses = backend.update_placement(placement)
            assert statuses == {0: "applied", 1: "applied"}
            assert backend.placement_version == 5
            # Re-push is idempotent on every worker (delta-frame semantics).
            assert backend.update_placement(placement) == {0: "noop", 1: "noop"}
            assert backend.placement_version == 5
        finally:
            backend.close()

    def test_second_gateway_adopts_advertised_map(self, worker_pair, dataset):
        pusher = RemoteBackend([w.address for w in worker_pair])
        follower = RemoteBackend([w.address for w in worker_pair])
        try:
            pusher.update_placement(PlacementMap(2, version=6))
            # The follower knows nothing of the push until a batch_result
            # advertises the newer version; then it fetches and swaps.
            assert follower.placement_version == 0
            batch = build_batch(dataset, seed=3, n_queries=4, n_initiators=2, stg_fraction=0.0)
            with QueryService(
                dataset.graph, dataset.calendars, backend=follower
            ) as gateway:
                results = gateway.solve_many(batch)
                assert not any(getattr(r, "error", None) for r in results)
                assert follower.placement_version == 6
                assert follower.route_report()["strategy"] == "vnode"
        finally:
            pusher.close()

    def test_mid_stream_swap_keeps_equivalence(self, dataset):
        """The acceptance bar: pushing a new map between batches must not
        change a single byte of results, only where queries execute."""
        batch = build_batch(dataset, seed=21, n_queries=12, n_initiators=5, stg_fraction=0.3)
        reference_keys, reference_counters, _ = run_backend(dataset, "serial", batch)
        workers = [WorkerHarness(dataset).start() for _ in range(2)]
        try:
            backend = RemoteBackend([w.address for w in workers], timeout=30.0)
            with QueryService(
                dataset.graph, dataset.calendars, backend=backend
            ) as gateway:
                first = gateway.solve_many(batch)  # CRC32 routing (version 0)
                backend.update_placement(
                    build_placement(batch, 2, replicas=2, version=3)
                )
                second = gateway.solve_many(batch)  # load-aware routing
                for results in (first, second):
                    keys = [
                        (r.feasible, r.members, r.total_distance, getattr(r, "period", None))
                        for r in results
                    ]
                    assert keys == reference_keys
                merged = gateway.stats().as_dict()
                for name in SOLVER_COUNTERS:
                    assert merged[name] == 2 * reference_counters[name]
        finally:
            for worker in workers:
                worker.stop()


# ----------------------------------------------------------------------
# hot-ego replication: fan-out + failover (acceptance criterion)
# ----------------------------------------------------------------------
class TestReplicaFailover:
    def test_replicated_hot_ego_survives_worker_death(self, dataset):
        hot = dataset.people[0]
        cold = dataset.people[1]
        placement = PlacementMap(
            2, version=1, assignments={cold: 0}, replicas={hot: (0, 1)}
        )
        workers = [WorkerHarness(dataset).start() for _ in range(2)]
        backend = RemoteBackend(
            [w.address for w in workers],
            timeout=10.0,
            connect_timeout=2.0,
            backoff_base=0.01,
            backoff_cap=0.05,
            placement=placement,
        )
        # Distinct hot queries so both replicas genuinely solve work, plus
        # cold queries pinned (unreplicated) to the shard we will kill.
        batch = [
            SGQuery(initiator=hot, group_size=size, radius=1, acquaintance=1)
            for size in (3, 4, 5, 3, 4, 5)
        ] + [
            SGQuery(initiator=cold, group_size=size, radius=1, acquaintance=1)
            for size in (3, 4)
        ]
        with QueryService(dataset.graph, dataset.calendars, backend="serial") as reference:
            expected = [
                (r.feasible, r.members, r.total_distance) for r in reference.solve_many(batch)
            ]
        try:
            with QueryService(dataset.graph, dataset.calendars, backend=backend) as gateway:
                first = gateway.solve_many(batch)
                assert not any(getattr(r, "error", None) for r in first)
                assert [
                    (r.feasible, r.members, r.total_distance) for r in first
                ] == expected
                assert gateway.stats().queries == len(batch)

                workers[0].stop()
                second = gateway.solve_many(batch)
                # Every replicated hot query failed over to the surviving
                # replica — byte-identical answers, zero ErrorResults.
                for result, key in zip(second[:6], expected[:6]):
                    assert not getattr(result, "error", None)
                    assert (result.feasible, result.members, result.total_distance) == key
                # The unreplicated cold ego lived only on the dead shard:
                # containment still degrades those to per-request errors.
                for result in second[6:]:
                    assert isinstance(result, ErrorResult)
                    assert "worker 127.0.0.1" in result.error
                # Exactly-once accounting: only the 6 recovered queries were
                # merged, never a double count from the failed primary wave.
                assert gateway.stats().queries == len(batch) + 6
                # Round-robin fan-out put 3 of the 6 hot queries on each
                # replica, so exactly the dead shard's 3 needed the retry
                # wave; the other 3 were already on the survivor.
                report = gateway.route_report()
                assert report["failover_queries"] == 3
                assert report["failover_batches"] == 1
        finally:
            for worker in workers[1:]:
                try:
                    worker.stop()
                except Exception:
                    pass
            backend.close()


# ----------------------------------------------------------------------
# remote placement equivalence (acceptance criterion)
# ----------------------------------------------------------------------
class TestRemotePlacementEquivalence:
    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**20),
        ring_seed=st.integers(min_value=0, max_value=2**10),
        replicas=st.integers(min_value=1, max_value=2),
    )
    def test_any_placement_matches_serial(self, dataset, seed, ring_seed, replicas):
        batch = build_batch(dataset, seed, n_queries=14, n_initiators=5, stg_fraction=0.3)
        reference_keys, reference_counters, reference_info = run_backend(
            dataset, "serial", batch
        )
        placement = build_placement(
            batch, 2, replicas=replicas, seed=ring_seed, version=1
        )
        workers = [WorkerHarness(dataset).start() for _ in range(2)]
        try:
            backend = RemoteBackend(
                [w.address for w in workers], timeout=30.0, placement=placement
            )
            keys, counters, info = run_backend(dataset, backend, batch)
        finally:
            for worker in workers:
                worker.stop()
        assert keys == reference_keys, "placement-routed remote results diverged"
        for name in SOLVER_COUNTERS:
            assert counters[name] == reference_counters[name]
        # Cache-accounting contract: one lookup per query is conserved, and
        # each replicated ego may add at most (width - 1) extra misses.
        assert (
            counters["cache_hits"] + counters["cache_misses"]
            == reference_counters["cache_hits"] + reference_counters["cache_misses"]
        )
        slack = sum(len(group) - 1 for group in placement.replicas.values())
        assert (
            reference_info.misses <= info.misses <= reference_info.misses + slack
        )
