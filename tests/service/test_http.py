"""HTTP gateway tier tests: routes, admission, rate limiting, drain.

The load-bearing property mirrors the backend suites: a batch served over
``POST /v1/queries`` must be **byte-identical** to encoding the serial
``QueryService`` answers with ``response_for`` — the HTTP tier adds
envelopes, never a second result encoding.  The rest covers the edges the
issue names: malformed JSON → 400, oversized bodies → 413, per-key rate
limiting → 429 with ``Retry-After``, pagination cursor round-trips,
``/health`` against a half-dead worker fleet, admission shed under induced
overload, and the SIGTERM drain dropping zero in-flight requests.

Most tests drive :meth:`GatewayApp.handle` directly (the app is socket-free
by design); ``TestSocketTier`` exercises the real ``ThreadingHTTPServer``
over ``urllib`` and the blocking ``run_gateway`` entry point.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import QueryError
from repro.service import QueryService, RemoteBackend, ShutdownSignal
from repro.service.codec import response_for
from repro.service.http import (
    DEFAULT_PAGE_SIZE,
    MAX_PAGE_SIZE,
    GatewayApp,
    GatewayConfig,
    HTTPGateway,
    RateLimiter,
    decode_cursor,
    encode_cursor,
    paginate,
    parse_rate_spec,
    run_gateway,
)
from repro.service.http.admission import AdmissionController

from ..conftest import make_random_calendars, make_random_graph
from .test_net import WorkerHarness


@pytest.fixture(scope="module")
def dataset():
    graph = make_random_graph(7, n=14, edge_prob=0.4)
    calendars = make_random_calendars(11, list(graph), horizon=12, availability=0.6)
    return graph, calendars


@pytest.fixture
def service(dataset):
    graph, calendars = dataset
    with QueryService(graph, calendars) as svc:
        yield svc


@pytest.fixture
def app(service):
    return GatewayApp(service)


def post(app, payload, headers=None, path="/v1/queries"):
    body = json.dumps(payload).encode("utf-8") if not isinstance(payload, bytes) else payload
    return app.handle("POST", path, headers or {}, body)


SG_PAYLOAD = {"initiator": 0, "group_size": 4, "radius": 2, "acquaintance": 1}
STG_PAYLOAD = {
    "initiator": 0,
    "group_size": 3,
    "radius": 2,
    "acquaintance": 1,
    "activity_length": 2,
}


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
class TestRouting:
    def test_unknown_route_404(self, app):
        response = app.handle("GET", "/nope")
        assert response.status == 404

    def test_wrong_method_on_queries_405(self, app):
        response = app.handle("GET", "/v1/queries")
        assert response.status == 405
        assert response.headers["Allow"] == "POST"

    def test_wrong_method_on_health_405(self, app):
        response = app.handle("POST", "/health")
        assert response.status == 405
        assert response.headers["Allow"] == "GET"

    def test_trailing_slash_and_query_string_normalised(self, app):
        assert app.handle("GET", "/health/").status == 200
        assert app.handle("GET", "/health?probe=1").status == 200

    def test_request_counters_track_status_buckets(self, app):
        app.handle("GET", "/health")
        app.handle("GET", "/nope")
        counters = app.request_counters()
        assert counters["requests"] == 2
        assert counters["by_status"]["2xx"] == 1
        assert counters["by_status"]["4xx"] == 1
        assert counters["active"] == 0


# ----------------------------------------------------------------------
# single queries
# ----------------------------------------------------------------------
class TestSingleQuery:
    def test_single_matches_serial_encoding(self, app, service):
        payload = dict(SG_PAYLOAD, id="req-1")
        response = post(app, payload)
        assert response.status == 200
        expected = response_for("req-1", service.solve_many([_query_of(service, payload)])[0])
        assert json.dumps(response.body) == json.dumps(expected)

    def test_stats_opt_in(self, app):
        response = post(app, dict(STG_PAYLOAD, id=7, stats=True))
        assert response.status == 200
        assert "stats" in response.body
        assert response.body["id"] == 7

    def test_unknown_initiator_field_400(self, app):
        response = post(app, dict(SG_PAYLOAD, initiator="nobody-here"))
        assert response.status == 400
        assert "initiator" in response.body["fields"]

    def test_missing_required_fields_reported_together(self, app):
        response = post(app, {"radius": 0})
        assert response.status == 400
        fields = response.body["fields"]
        assert set(fields) == {"initiator", "group_size", "radius"}

    def test_alias_collision_400(self, app):
        response = post(app, dict(SG_PAYLOAD, p=4))
        assert response.status == 400
        assert "alias collision" in response.body["fields"]["p"]

    def test_non_object_request_400(self, app):
        response = post(app, [1, 2, 3])
        assert response.status == 400

    def test_malformed_json_400(self, app):
        response = post(app, b"{not json")
        assert response.status == 400
        assert "not valid JSON" in response.body["error"]

    def test_oversized_body_413(self, service):
        app = GatewayApp(service, GatewayConfig(max_body_bytes=64))
        response = post(app, b"x" * 65)
        assert response.status == 413


def _query_of(service, payload):
    from repro.service.codec import query_from_request

    return query_from_request(payload)


# ----------------------------------------------------------------------
# batches: the byte-identity property
# ----------------------------------------------------------------------
class TestBatchIdentity:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=2**30), data=st.data())
    def test_http_batch_byte_identical_to_serial(self, dataset, seed, data):
        """Any seeded batch over HTTP == serial solve_many + response_for."""
        graph, calendars = dataset
        people = sorted(graph)
        n = data.draw(st.integers(min_value=1, max_value=8))
        payloads = []
        for i in range(n):
            payload = {
                "id": f"q{i}",
                "initiator": data.draw(st.sampled_from(people)),
                "group_size": data.draw(st.integers(min_value=2, max_value=5)),
                "radius": data.draw(st.integers(min_value=1, max_value=3)),
                "acquaintance": data.draw(st.integers(min_value=0, max_value=3)),
            }
            if data.draw(st.booleans()):
                payload["activity_length"] = data.draw(st.integers(min_value=1, max_value=3))
            payloads.append(payload)

        with QueryService(graph, calendars) as gateway_service:
            app = GatewayApp(gateway_service)
            response = post(app, {"queries": payloads})
        assert response.status == 200

        with QueryService(graph, calendars) as reference:
            queries = [_query_of(reference, p) for p in payloads]
            results = reference.solve_many(queries)
            expected = [response_for(p["id"], r) for p, r in zip(payloads, results)]

        served = json.dumps(response.body["results"], separators=(",", ":")).encode()
        direct = json.dumps(expected, separators=(",", ":")).encode()
        assert served == direct
        assert response.body["total"] == len(payloads)
        assert response.body["next_cursor"] is None

    def test_batch_bad_query_reports_index(self, app):
        payloads = [dict(SG_PAYLOAD), {"initiator": 0, "group_size": "four"}]
        response = post(app, {"queries": payloads})
        assert response.status == 400
        assert response.body["index"] == 1
        assert "group_size" in response.body["fields"]

    def test_batch_queries_must_be_list(self, app):
        response = post(app, {"queries": {"initiator": 0}})
        assert response.status == 400
        assert "queries" in response.body["fields"]

    def test_empty_batch_ok(self, app):
        response = post(app, {"queries": []})
        assert response.status == 200
        assert response.body == {"results": [], "total": 0, "next_cursor": None}


# ----------------------------------------------------------------------
# pagination
# ----------------------------------------------------------------------
class TestPagination:
    def test_cursor_round_trip(self):
        for offset in (0, 1, 255, 10_000):
            assert decode_cursor(encode_cursor(offset)) == offset

    def test_malformed_cursor_rejected(self):
        for bogus in ("", "!!!", encode_cursor(3)[:-2] + "zz", "eyJ4IjogMX0"):
            with pytest.raises(QueryError):
                decode_cursor(bogus)

    def test_paginate_walks_everything_exactly_once(self):
        items = list(range(23))
        seen, cursor = [], None
        while True:
            page, cursor, total = paginate(items, cursor, 5)
            seen.extend(page)
            assert total == 23
            if cursor is None:
                break
        assert seen == items

    def test_page_size_clamped_to_max(self):
        page, cursor, _ = paginate(list(range(MAX_PAGE_SIZE + 10)), None, MAX_PAGE_SIZE + 10)
        assert len(page) == MAX_PAGE_SIZE
        assert cursor is not None

    def test_default_page_size(self):
        page, _, _ = paginate(list(range(DEFAULT_PAGE_SIZE + 1)), None, None)
        assert len(page) == DEFAULT_PAGE_SIZE

    def test_offset_past_end_gives_empty_final_page(self):
        page, cursor, total = paginate([1, 2], encode_cursor(50), 10)
        assert page == [] and cursor is None and total == 2

    def test_http_cursor_round_trip_collects_full_batch(self, app, service, dataset):
        graph, _ = dataset
        people = sorted(graph)
        payloads = [
            dict(SG_PAYLOAD, id=i, initiator=people[i % len(people)]) for i in range(9)
        ]
        collected, cursor = [], None
        for _ in range(10):
            body = {"queries": payloads, "page_size": 4}
            if cursor is not None:
                body["cursor"] = cursor
            response = post(app, body)
            assert response.status == 200
            assert response.body["total"] == 9
            collected.extend(response.body["results"])
            cursor = response.body["next_cursor"]
            if cursor is None:
                break
        queries = [_query_of(service, p) for p in payloads]
        expected = [
            response_for(p["id"], r) for p, r in zip(payloads, service.solve_many(queries))
        ]
        assert json.dumps(collected) == json.dumps(expected)

    def test_bad_cursor_in_request_400(self, app):
        response = post(app, {"queries": [dict(SG_PAYLOAD)], "cursor": "???"})
        assert response.status == 400

    def test_bad_page_size_400(self, app):
        response = post(app, {"queries": [dict(SG_PAYLOAD)], "page_size": 0})
        assert response.status == 400


# ----------------------------------------------------------------------
# rate limiting
# ----------------------------------------------------------------------
class TestRateLimit:
    def test_parse_rate_spec(self):
        assert parse_rate_spec("10") == (10.0, 10.0)
        assert parse_rate_spec("2.5:40") == (2.5, 40.0)
        assert parse_rate_spec("0.5") == (0.5, 1.0)
        for bogus in ("", "fast", "0", "-1", "5:0"):
            with pytest.raises(ValueError):
                parse_rate_spec(bogus)

    def test_token_bucket_with_injected_clock(self):
        clock = [0.0]
        limiter = RateLimiter(rate=1.0, burst=2.0, clock=lambda: clock[0])
        assert limiter.allow("k")[0] and limiter.allow("k")[0]
        allowed, retry_after = limiter.allow("k")
        assert not allowed and retry_after == pytest.approx(1.0)
        clock[0] += 1.0
        assert limiter.allow("k")[0]
        # Keys are independent buckets.
        assert limiter.allow("other")[0]

    def test_rate_limited_429_with_retry_after(self, service):
        app = GatewayApp(service, GatewayConfig(rate=1.0, burst=1.0))
        clock = [0.0]
        app.ratelimiter = RateLimiter(1.0, 1.0, clock=lambda: clock[0])
        headers = {"X-API-Key": "tenant-a"}
        assert post(app, SG_PAYLOAD, headers).status == 200
        response = post(app, SG_PAYLOAD, headers)
        assert response.status == 429
        assert int(response.headers["Retry-After"]) >= 1
        assert response.body["retry_after"] >= 1
        # Another key is unaffected; the same key recovers after refill.
        assert post(app, SG_PAYLOAD, {"X-API-Key": "tenant-b"}).status == 200
        clock[0] += 1.5
        assert post(app, SG_PAYLOAD, headers).status == 200

    def test_health_exempt_from_rate_limit(self, service):
        app = GatewayApp(service, GatewayConfig(rate=1.0, burst=1.0))
        app.ratelimiter = RateLimiter(1.0, 1.0, clock=lambda: 0.0)
        headers = {"X-API-Key": "tenant-a"}
        assert post(app, SG_PAYLOAD, headers).status == 200
        for _ in range(5):
            assert app.handle("GET", "/health", headers).status == 200

    def test_prune_keeps_bucket_map_bounded(self):
        clock = [0.0]
        limiter = RateLimiter(rate=1.0, burst=1.0, max_keys=8, clock=lambda: clock[0])
        for i in range(9):
            limiter.allow(f"key-{i}")
        clock[0] += 10.0  # every bucket refills to full -> prunable
        limiter.allow("fresh")
        assert limiter.snapshot()["keys"] <= 8


# ----------------------------------------------------------------------
# admission control + load shedding
# ----------------------------------------------------------------------
class _SlowService:
    """Duck-typed service whose solve_many blocks until released."""

    def __init__(self, service, gate: threading.Event, entered: threading.Event):
        self._service = service
        self._gate = gate
        self._entered = entered

    def __getattr__(self, name):
        return getattr(self._service, name)

    def solve_many(self, queries, **kwargs):
        self._entered.set()
        assert self._gate.wait(10), "test never released the solve gate"
        return self._service.solve_many(queries, **kwargs)


class TestAdmission:
    def test_controller_shed_beyond_queue(self):
        controller = AdmissionController(max_concurrency=1, max_queue=0)
        ticket = controller.try_admit()
        assert ticket is not None and not ticket.queued
        assert controller.try_admit() is None  # queue full -> shed
        ticket.release()
        assert controller.try_admit() is not None
        snap = controller.snapshot()
        assert snap["shed"] == 1 and snap["admitted"] == 2

    def test_controller_queued_admission(self):
        controller = AdmissionController(max_concurrency=1, max_queue=1)
        first = controller.try_admit()
        waited = []

        def waiter():
            waited.append(controller.try_admit(timeout=5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        first.release()
        thread.join(5)
        assert waited[0] is not None and waited[0].queued
        waited[0].release()

    def test_controller_drain_wakes_queued_waiters(self):
        controller = AdmissionController(max_concurrency=1, max_queue=1)
        first = controller.try_admit()
        refused = []
        thread = threading.Thread(target=lambda: refused.append(controller.try_admit(timeout=5.0)))
        thread.start()
        time.sleep(0.05)
        controller.begin_drain()
        thread.join(5)
        assert refused == [None]
        assert controller.snapshot()["refused_draining"] == 1
        first.release()

    def test_overload_sheds_429_with_retry_after(self, service):
        gate, entered = threading.Event(), threading.Event()
        slow = _SlowService(service, gate, entered)
        app = GatewayApp(slow, GatewayConfig(max_concurrency=1, max_queue=0, admit_timeout=0.2))
        first_status = []
        blocker = threading.Thread(
            target=lambda: first_status.append(post(app, SG_PAYLOAD).status)
        )
        blocker.start()
        assert entered.wait(10)
        try:
            response = post(app, SG_PAYLOAD)
            assert response.status == 429
            assert "shed" in response.body["error"]
            assert int(response.headers["Retry-After"]) >= 1
            # Health answers while the gateway is saturated.
            assert app.handle("GET", "/health").status == 200
        finally:
            gate.set()
            blocker.join(10)
        assert first_status == [200]
        assert app.admission.snapshot()["shed"] == 1

    def test_draining_refuses_with_503(self, app):
        app.begin_drain()
        response = post(app, SG_PAYLOAD)
        assert response.status == 503
        assert "draining" in response.body["error"]
        assert app.handle("GET", "/health").status == 503
        assert app.handle("GET", "/health").body["status"] == "draining"


# ----------------------------------------------------------------------
# health + stats
# ----------------------------------------------------------------------
class TestHealth:
    def test_ok_over_local_backend(self, app, service):
        response = app.handle("GET", "/health")
        assert response.status == 200
        body = response.body
        assert body["status"] == "ok"
        assert body["backend"] == service.backend_name
        assert body["live_version"] == service.live_version
        assert set(body["cache"]) == {"hits", "misses", "size", "max_size", "hit_rate"}

    def test_half_dead_fleet_reports_degraded_503(self, dataset):
        graph, calendars = dataset
        harness = WorkerHarness(_Dataset(graph, calendars)).start()
        try:
            backend = RemoteBackend(
                [harness.address, "127.0.0.1:9"], timeout=2.0
            )
            with QueryService(graph, calendars, backend=backend) as svc:
                app = GatewayApp(svc)
                response = app.handle("GET", "/health")
                assert response.status == 503
                assert response.body["status"] == "degraded"
                workers = response.body["workers"]
                assert [w["alive"] for w in workers] == [True, False]
                assert workers[0]["stats"] is not None
                assert workers[1]["stats"] is None
        finally:
            harness.stop()

    def test_stats_endpoint_shape(self, app):
        post(app, SG_PAYLOAD)
        response = app.handle("GET", "/stats")
        assert response.status == 200
        body = response.body
        assert body["service"]["queries"] >= 1
        assert body["admission"]["admitted"] == 1
        assert body["ratelimit"]["enabled"] is False
        assert body["gateway"]["requests"] >= 1


class _Dataset:
    """Minimal dataset shim for WorkerHarness (graph + calendars attrs)."""

    def __init__(self, graph, calendars):
        self.graph = graph
        self.calendars = calendars


# ----------------------------------------------------------------------
# the socket tier: real HTTP over a real port
# ----------------------------------------------------------------------
def _http(url, payload=None, headers=None, method=None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    for name, value in (headers or {}).items():
        request.add_header(name, value)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=10) as raw:
            return raw.status, json.loads(raw.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


class TestSocketTier:
    def test_end_to_end_single_query(self, dataset):
        graph, calendars = dataset
        with QueryService(graph, calendars) as svc:
            with HTTPGateway(svc) as gateway:
                status, body = _http(f"{gateway.url}/v1/queries", dict(SG_PAYLOAD, id=1))
                assert status == 200
                expected = response_for(1, svc.solve_many([_query_of(svc, SG_PAYLOAD)])[0])
                assert json.dumps(body) == json.dumps(expected)
                status, health = _http(f"{gateway.url}/health")
                assert status == 200 and health["status"] == "ok"

    def test_oversized_content_length_413_without_reading(self, dataset):
        graph, calendars = dataset
        with QueryService(graph, calendars) as svc:
            config = GatewayConfig(max_body_bytes=128)
            with HTTPGateway(svc, config=config) as gateway:
                status, body = _http(
                    f"{gateway.url}/v1/queries", {"filler": "y" * 4096, **SG_PAYLOAD}
                )
                assert status == 413
                assert "exceeds" in body["error"]

    def test_run_gateway_drains_in_flight_on_sigterm(self, dataset):
        """The acceptance drain: SIGTERM mid-request drops nothing."""
        graph, calendars = dataset
        gate, entered = threading.Event(), threading.Event()
        svc = QueryService(graph, calendars)
        slow = _SlowService(svc, gate, entered)
        stop = ShutdownSignal()  # never installed: tests trigger() it
        ready = threading.Event()
        ports = []

        real_start = HTTPGateway.start

        def capturing_start(self):
            result = real_start(self)
            ports.append(self.port)
            ready.set()
            return result

        HTTPGateway.start = capturing_start
        try:
            runner = threading.Thread(
                target=lambda: run_gateway(slow, port=0, stop=stop), daemon=True
            )
            runner.start()
            assert ready.wait(10)
            url = f"http://127.0.0.1:{ports[0]}"
            outcome = []
            client = threading.Thread(
                target=lambda: outcome.append(_http(f"{url}/v1/queries", SG_PAYLOAD))
            )
            client.start()
            assert entered.wait(10)  # the request is in flight
            stop.trigger()  # SIGTERM equivalent
            time.sleep(0.1)  # gateway begins draining
            gate.set()  # the solve completes during the drain
            client.join(10)
            runner.join(10)
            assert not runner.is_alive()
            status, body = outcome[0]
            assert status == 200  # the in-flight request was answered
            assert body["feasible"] in (True, False)
        finally:
            HTTPGateway.start = real_start
            gate.set()
