"""Concurrent-batch tests: the multi-gateway worker contract.

These tests pin the tentpole property of the per-batch
:class:`~repro.service.ExecutionContext` refactor: a TCP worker no longer
holds a lock across batch execution, so batch frames from *separate
connections* (= separate gateways) make progress simultaneously — and
because every batch accounts into its own context, the worker's merged
stats still equal the serial sum of everything it answered, with each
gateway seeing its own exact delta.
"""

import json
import socket
import threading
import time

import pytest

from repro.experiments.workloads import workload
from repro.service import ExecutionContext, QueryService, RemoteBackend
from repro.service.codec import request_for
from repro.service.net.protocol import client_handshake, recv_frame, send_frame

from .test_backends import DETERMINISTIC_COUNTERS, build_batch, run_backend
from .test_net import WorkerHarness


@pytest.fixture(scope="module")
def dataset():
    """Seeded 60-person workload shared by every test in this module."""
    return workload(network_size=60, schedule_days=1, seed=7)


def _handshaken_socket(address: str, timeout: float = 15.0) -> socket.socket:
    host, _, port = address.rpartition(":")
    sock = socket.create_connection((host, int(port)), timeout=timeout)
    sock.settimeout(timeout)
    client_handshake(sock)
    return sock


class TestConcurrentBatchFrames:
    def test_batches_on_separate_connections_progress_simultaneously(self, dataset):
        # Both connections' batches must be *inside* the solve at the same
        # time.  A two-party barrier in the solve path proves it: with the
        # old per-worker solve lock the second batch could not start until
        # the first finished, the barrier would never fill, and both
        # batches would time out broken.
        harness = WorkerHarness(dataset).start()
        barrier = threading.Barrier(2)
        original = harness.service.solve_many

        def synced_solve_many(queries, max_workers=None, context=None):
            barrier.wait(timeout=15)
            return original(queries, max_workers, context)

        harness.service.solve_many = synced_solve_many
        batch = build_batch(dataset, seed=21, n_queries=4, n_initiators=3, stg_fraction=0.0)
        requests = [request_for(query) for query in batch]
        replies = {}
        errors = []

        def gateway(name: str) -> None:
            try:
                sock = _handshaken_socket(harness.address)
                try:
                    send_frame(sock, {"type": "batch", "id": name, "requests": requests})
                    replies[name] = recv_frame(sock)
                finally:
                    sock.close()
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append((name, exc))

        try:
            threads = [
                threading.Thread(target=gateway, args=(name,)) for name in ("g1", "g2")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(30)
            assert not errors, f"gateway thread failed: {errors}"
            assert not barrier.broken, "batches never overlapped: worker serialized them"
            for name in ("g1", "g2"):
                reply = replies[name]
                assert reply["type"] == "batch_result"
                assert reply["id"] == name
                assert all("error" not in result for result in reply["results"])
        finally:
            harness.service.solve_many = original
            harness.stop()

    def test_two_gateways_overlapping_batches_results_and_stats(self, dataset):
        # Two gateways hammer ONE worker with overlapping batches at the
        # same time; both must get exactly the results a serial service
        # produces, each gateway's merged stats must equal its own serial
        # reference, and the worker's totals must equal the serial sum of
        # both batches — the per-batch contexts may interleave arbitrarily
        # but must never smear into each other.
        batch_a = build_batch(dataset, seed=31, n_queries=12, n_initiators=5, stg_fraction=0.3)
        batch_b = build_batch(dataset, seed=32, n_queries=12, n_initiators=5, stg_fraction=0.3)
        ref_keys_a, ref_counters_a, _ = run_backend(dataset, "serial", batch_a)
        ref_keys_b, ref_counters_b, _ = run_backend(dataset, "serial", batch_b)
        combined_counters = {
            name: ref_counters_a[name] + ref_counters_b[name]
            for name in DETERMINISTIC_COUNTERS
        }
        # Cache counters are interleaving-independent only because misses
        # are single-flighted; the worker-side totals for overlapping
        # batches equal those of one serial service answering batch_a then
        # batch_b: every distinct (initiator, radius) misses exactly once.
        serial_service = QueryService(dataset.graph, dataset.calendars, backend="serial")
        with serial_service:
            serial_service.solve_many(batch_a)
            serial_service.solve_many(batch_b)
            expected_worker = serial_service.stats().as_dict()

        harness = WorkerHarness(dataset).start()
        outcomes = {}
        errors = []
        start_line = threading.Barrier(2)

        def gateway(name, batch):
            try:
                backend = RemoteBackend([harness.address], timeout=60.0)
                with QueryService(
                    dataset.graph, dataset.calendars, backend=backend
                ) as service:
                    start_line.wait(timeout=15)
                    results = service.solve_many(batch)
                    outcomes[name] = (results, service.stats().as_dict())
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append((name, exc))

        try:
            threads = [
                threading.Thread(target=gateway, args=("a", batch_a)),
                threading.Thread(target=gateway, args=("b", batch_b)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120)
            assert not errors, f"gateway failed: {errors}"
            worker_stats = harness.service.stats().as_dict()
        finally:
            harness.stop()

        # Per-gateway: results and the per-query counters are exact.  The
        # cache split between the gateways depends on interleaving (the
        # worker's cache is shared, so whichever batch touches a key first
        # takes the miss) — only each gateway's lookup total and the
        # worker-wide split are invariant.
        per_query_counters = [
            c for c in DETERMINISTIC_COUNTERS if c not in ("cache_hits", "cache_misses")
        ]
        for name, batch, ref_keys, ref_counters in (
            ("a", batch_a, ref_keys_a, ref_counters_a),
            ("b", batch_b, ref_keys_b, ref_counters_b),
        ):
            results, stats = outcomes[name]
            assert not any(getattr(r, "error", None) for r in results)
            keys = [
                (r.feasible, r.members, r.total_distance, getattr(r, "period", None))
                for r in results
            ]
            assert keys == ref_keys, f"gateway {name} results diverged"
            gateway_counters = {c: stats[c] for c in per_query_counters}
            reference = {c: ref_counters[c] for c in per_query_counters}
            assert gateway_counters == reference, f"gateway {name} stats diverged"
            assert stats["cache_hits"] + stats["cache_misses"] == len(batch)
        # Worker-wide: the merged totals equal one serial service answering
        # batch_a then batch_b — every distinct ego network missed exactly
        # once (single-flight), everything else hit, nothing double-counted.
        merged = {c: worker_stats[c] for c in DETERMINISTIC_COUNTERS}
        expected = {c: expected_worker[c] for c in DETERMINISTIC_COUNTERS}
        assert merged == expected, "worker merged stats != serial sum"
        for counter in per_query_counters:
            assert merged[counter] == combined_counters[counter]

    def test_batch_frame_opt_in_stats_field(self, dataset):
        # {"stats": true} on a batch frame returns the batch's merged
        # kernel statistics, recorded into the batch's ExecutionContext by
        # the solvers themselves.
        harness = WorkerHarness(dataset).start()
        try:
            batch = build_batch(dataset, seed=41, n_queries=5, n_initiators=3, stg_fraction=0.4)
            requests = [request_for(query) for query in batch]
            sock = _handshaken_socket(harness.address)
            try:
                send_frame(sock, {"type": "batch", "id": 1, "requests": requests, "stats": True})
                with_stats = recv_frame(sock)
                send_frame(sock, {"type": "batch", "id": 2, "requests": requests})
                without = recv_frame(sock)
            finally:
                sock.close()
        finally:
            harness.stop()
        assert "stats" not in without
        batch_stats = with_stats["stats"]
        assert batch_stats["nodes_expanded"] == sum(
            result["stats"]["nodes_expanded"] for result in with_stats["results"]
        )
        assert batch_stats["nodes_expanded"] == with_stats["stats_delta"]["nodes_expanded"]

    def test_failed_batch_ships_no_stats_even_when_requested(self, dataset):
        # A batch whose solve blows up answers every request with an error,
        # ships no stats_delta — and no opt-in kernel stats either, even if
        # some solves completed before the failure.
        harness = WorkerHarness(dataset).start()

        async def explode(queries, **kwargs):
            raise RuntimeError("pool died")

        harness.service.solve_many_async = explode
        try:
            batch = build_batch(dataset, seed=42, n_queries=3, n_initiators=2, stg_fraction=0.0)
            requests = [request_for(query) for query in batch]
            sock = _handshaken_socket(harness.address)
            try:
                send_frame(sock, {"type": "batch", "id": 1, "requests": requests, "stats": True})
                reply = recv_frame(sock)
            finally:
                sock.close()
        finally:
            harness.stop()
        assert reply["type"] == "batch_result"
        assert all(result == {"error": "pool died"} for result in reply["results"])
        assert reply["stats_delta"] == {}
        assert "stats" not in reply


class TestExecutionContextDeltas:
    def test_caller_context_carries_exact_batch_delta(self, dataset):
        # A caller-provided context reads this batch's delta while the
        # service totals keep accumulating across batches.
        batch = build_batch(dataset, seed=51, n_queries=8, n_initiators=4, stg_fraction=0.5)
        with QueryService(dataset.graph, dataset.calendars, backend="serial") as service:
            first = ExecutionContext()
            service.solve_many(batch, context=first)
            second = ExecutionContext()
            service.solve_many(batch, context=second)
            totals = service.stats().as_dict()
        first_delta = first.as_delta()
        second_delta = second.as_delta()
        assert first_delta["queries"] == len(batch)
        assert second_delta["queries"] == len(batch)
        # Second pass is all cache hits; first pass took the misses.
        assert second_delta["cache_misses"] == 0
        assert first_delta["cache_misses"] > 0
        for counter in DETERMINISTIC_COUNTERS:
            assert totals[counter] == first_delta[counter] + second_delta[counter]

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_solver_records_kernel_stats_into_context(self, dataset, backend):
        # The merged kernel view is backend-invariant too: sharded backends
        # re-record worker-side result stats into the parent context.
        batch = build_batch(dataset, seed=52, n_queries=6, n_initiators=3, stg_fraction=0.0)
        context = ExecutionContext()
        with QueryService(
            dataset.graph, dataset.calendars, max_workers=2, backend=backend
        ) as service:
            results = service.solve_many(batch, context=context)
        kernel = context.search_stats()
        assert context.solves == len(batch)
        assert kernel.nodes_expanded == sum(r.stats.nodes_expanded for r in results)
        assert kernel.candidates_considered == sum(
            r.stats.candidates_considered for r in results
        )

    def test_remote_backend_kernel_stats_cross_the_wire(self, dataset):
        batch = build_batch(dataset, seed=54, n_queries=6, n_initiators=3, stg_fraction=0.3)
        harness = WorkerHarness(dataset).start()
        try:
            context = ExecutionContext()
            backend = RemoteBackend([harness.address], timeout=30.0)
            with QueryService(
                dataset.graph, dataset.calendars, backend=backend
            ) as service:
                results = service.solve_many(batch, context=context)
        finally:
            harness.stop()
        kernel = context.search_stats()
        assert context.solves == len(batch)
        assert kernel.nodes_expanded == sum(r.stats.nodes_expanded for r in results)
        assert kernel.nodes_expanded > 0

    def test_failed_batch_merges_nothing_on_serial(self, dataset):
        # All-or-nothing now holds on every backend, not just process: a
        # batch that raises mid-flight leaves the totals untouched.
        good = build_batch(dataset, seed=53, n_queries=4, n_initiators=2, stg_fraction=0.0)
        with QueryService(dataset.graph, dataset.calendars, backend="serial") as service:
            original = service._solve_local
            calls = {"n": 0}

            def explode_midway(query, context):
                calls["n"] += 1
                if calls["n"] == 3:
                    raise RuntimeError("solver died mid-batch")
                return original(query, context)

            service._solve_local = explode_midway
            with pytest.raises(RuntimeError):
                service.solve_many(good)
            service._solve_local = original
            assert service.stats().queries == 0
            service.solve_many(good)
            assert service.stats().queries == len(good)


class TestJsonlStatsOptIn:
    def test_per_request_stats_field(self, dataset):
        import io

        from repro.service import serve_jsonl

        initiator = dataset.people[0]
        lines = [
            json.dumps({"id": 1, "initiator": initiator, "group_size": 3, "stats": True}),
            json.dumps({"id": 2, "initiator": initiator, "group_size": 3}),
        ]
        stdin = io.StringIO("\n".join(lines) + "\n")
        stdout = io.StringIO()
        with QueryService(dataset.graph, dataset.calendars, backend="serial") as service:
            served = serve_jsonl(service, stdin, stdout)
        assert served == 2
        responses = {
            payload["id"]: payload
            for payload in map(json.loads, stdout.getvalue().splitlines())
        }
        assert "stats" in responses[1]
        assert responses[1]["stats"]["nodes_expanded"] > 0
        assert "elapsed_seconds" in responses[1]["stats"]
        assert "stats" not in responses[2]


class TestConcurrencyTiming:
    def test_slow_batch_does_not_block_fast_batch(self, dataset):
        # A worker busy with a slow gateway batch must still answer another
        # connection's small batch promptly — the starvation scenario that
        # motivated dropping the lock.  The slow batch is made slow
        # artificially (a sleep inside the solve path), so the test is
        # robust on a single-core runner.
        harness = WorkerHarness(dataset).start()
        original = harness.service.solve_many

        def sleepy_solve_many(queries, max_workers=None, context=None):
            if len(queries) > 1:
                time.sleep(1.5)
            return original(queries, max_workers, context)

        harness.service.solve_many = sleepy_solve_many
        batch = build_batch(dataset, seed=61, n_queries=6, n_initiators=3, stg_fraction=0.0)
        slow_requests = [request_for(query) for query in batch]
        fast_request = [request_for(batch[0])]
        slow_started = threading.Event()
        slow_reply = {}

        def slow_gateway():
            sock = _handshaken_socket(harness.address)
            try:
                send_frame(sock, {"type": "batch", "id": "slow", "requests": slow_requests})
                slow_started.set()
                slow_reply["frame"] = recv_frame(sock)
            finally:
                sock.close()

        try:
            thread = threading.Thread(target=slow_gateway)
            thread.start()
            assert slow_started.wait(10)
            time.sleep(0.1)  # let the slow batch enter the worker
            sock = _handshaken_socket(harness.address)
            try:
                start = time.monotonic()
                send_frame(sock, {"type": "batch", "id": "fast", "requests": fast_request})
                fast = recv_frame(sock)
                fast_elapsed = time.monotonic() - start
            finally:
                sock.close()
            thread.join(30)
        finally:
            harness.service.solve_many = original
            harness.stop()
        assert fast["type"] == "batch_result"
        assert "error" not in fast["results"][0]
        assert fast_elapsed < 1.0, (
            f"small batch waited {fast_elapsed:.2f}s behind another "
            "connection's slow batch — worker is serializing again"
        )
        assert slow_reply["frame"]["type"] == "batch_result"
