"""JSONL protocol edge cases, shared by the stdin and socket paths.

The satellite coverage the codec refactor calls for: oversized lines,
non-object payloads, duplicate/absent ``id`` handling, and the
``total_distance: null`` convention round-tripping through
``query_from_request`` / ``response_for`` (and the socket path's
full-fidelity ``encode_result`` / ``decode_result``).
"""

import io
import json
import math

import pytest

from repro.core import SGQuery
from repro.experiments.workloads import workload
from repro.service import QueryService, serve_jsonl
from repro.service.codec import (
    MAX_REQUEST_BYTES,
    decode_result,
    encode_result,
    query_from_request,
    response_for,
)
from repro.service.jsonl import _parse_line


@pytest.fixture(scope="module")
def dataset():
    return workload(network_size=60, schedule_days=1, seed=7)


@pytest.fixture
def service(dataset):
    with QueryService(dataset.graph, dataset.calendars, max_workers=2) as svc:
        yield svc


def _serve(service, lines, **kwargs):
    out = io.StringIO()
    served = serve_jsonl(service, io.StringIO("\n".join(lines) + "\n"), out, **kwargs)
    return served, [json.loads(line) for line in out.getvalue().splitlines()]


class TestOversizedLines:
    def test_oversized_line_answered_with_error(self, service, dataset):
        huge = json.dumps(
            {"initiator": dataset.people[0], "p": 3, "pad": "x" * (MAX_REQUEST_BYTES + 10)}
        )
        ok = json.dumps({"id": 2, "initiator": dataset.people[0], "p": 3, "k": 1})
        served, responses = _serve(service, [huge, ok])
        assert served == 2
        assert "error" in responses[0] and "exceeds" in responses[0]["error"]
        assert responses[0]["id"] is None  # the line was never parsed
        assert responses[1]["id"] == 2 and "feasible" in responses[1]

    def test_boundary_line_still_parsed(self):
        entry = _parse_line(json.dumps({"initiator": 1, "p": 3}))
        assert entry is not None and entry.error is None


class TestNonObjectPayloads:
    @pytest.mark.parametrize("line", ["42", '"text"', "[1,2,3]", "null", "true"])
    def test_non_object_json_is_an_error_response(self, service, line):
        served, responses = _serve(service, [line])
        assert served == 1
        assert "error" in responses[0]
        assert responses[0]["id"] is None

    @pytest.mark.parametrize("payload", [42, "text", [1, 2], None, True])
    def test_query_from_request_rejects_non_objects(self, payload):
        from repro.exceptions import QueryError

        with pytest.raises(QueryError):
            query_from_request(payload)


class TestRequestIds:
    def test_duplicate_ids_each_answered_in_order(self, service, dataset):
        lines = [
            json.dumps({"id": "dup", "initiator": dataset.people[0], "p": 3, "k": 1}),
            json.dumps({"id": "dup", "initiator": dataset.people[1], "p": 3, "k": 1}),
        ]
        served, responses = _serve(service, lines)
        assert served == 2
        assert [r["id"] for r in responses] == ["dup", "dup"]
        assert all("feasible" in r for r in responses)

    def test_absent_id_echoed_as_null(self, service, dataset):
        served, responses = _serve(
            service, [json.dumps({"initiator": dataset.people[0], "p": 3, "k": 1})]
        )
        assert served == 1
        assert responses[0]["id"] is None
        assert "feasible" in responses[0]

    def test_non_scalar_id_echoed_verbatim(self, service, dataset):
        request_id = {"tenant": 4, "seq": [1, 2]}
        served, responses = _serve(
            service,
            [json.dumps({"id": request_id, "initiator": dataset.people[0], "p": 3, "k": 1})],
        )
        assert responses[0]["id"] == request_id


class TestTotalDistanceNull:
    def test_infeasible_null_roundtrip_client_encoding(self, service, dataset):
        # An impossible clique demand guarantees infeasibility.
        query = SGQuery(initiator=dataset.people[0], group_size=50, radius=1, acquaintance=0)
        result = service.solve(query)
        assert result.feasible is False
        payload = response_for(5, result)
        assert payload["total_distance"] is None
        text = json.dumps(payload, allow_nan=False)  # strict JSON, no Infinity
        assert json.loads(text)["total_distance"] is None

    def test_infeasible_null_roundtrip_worker_encoding(self, service, dataset):
        query = SGQuery(initiator=dataset.people[0], group_size=50, radius=1, acquaintance=0)
        result = service.solve(query)
        payload = json.loads(json.dumps(encode_result(result), allow_nan=False))
        decoded = decode_result(payload)
        assert decoded.total_distance == math.inf
        assert decoded == result

    def test_request_defaults_roundtrip(self):
        # radius/acquaintance defaults applied by the codec survive a
        # re-encode: the socket path re-encodes parsed queries verbatim.
        from repro.service.codec import request_for

        query = query_from_request({"initiator": 1, "p": 3})
        assert (query.radius, query.acquaintance) == (1, 1)
        assert query_from_request(request_for(query)) == query
