"""Tests for initiator-to-shard routing (:mod:`repro.service.sharding`)."""

import os
import pathlib
import subprocess
import sys

import pytest

import repro

from repro.core import SGQuery
from repro.exceptions import QueryError
from repro.service import ShardMap, stable_shard


class TestStableShard:
    def test_in_range(self):
        for n_shards in (1, 2, 3, 8):
            for vertex in list(range(50)) + ["alice", "bob", ("compound", 3)]:
                assert 0 <= stable_shard(vertex, n_shards) < n_shards

    def test_deterministic_within_process(self):
        assert stable_shard("alice", 4) == stable_shard("alice", 4)
        assert stable_shard(17, 8) == stable_shard(17, 8)

    def test_single_shard_short_circuits(self):
        assert stable_shard("anything", 1) == 0

    def test_rejects_non_positive_shard_count(self):
        with pytest.raises(QueryError):
            stable_shard(0, 0)

    def test_spreads_initiators(self):
        # 100 initiators over 4 shards: every shard should own someone.
        shards = {stable_shard(v, 4) for v in range(100)}
        assert shards == {0, 1, 2, 3}

    def test_stable_across_processes(self):
        # The parent and its pool workers must agree on placement even under
        # hash randomisation, so the mapping cannot depend on PYTHONHASHSEED.
        code = (
            "from repro.service import stable_shard; "
            "print([stable_shard(v, 5) for v in [0, 41, 'alice', 'bob']])"
        )
        src_dir = str(pathlib.Path(repro.__file__).resolve().parents[1])
        runs = set()
        for seed in ("0", "1", "random"):
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                check=True,
                env={**os.environ, "PYTHONPATH": src_dir, "PYTHONHASHSEED": seed},
            )
            runs.add(out.stdout.strip())
        assert len(runs) == 1
        expected = repr([stable_shard(v, 5) for v in [0, 41, "alice", "bob"]])
        assert runs.pop() == expected


class TestShardMap:
    def test_partition_preserves_indices_and_order(self):
        shard_map = ShardMap(3)
        queries = [
            SGQuery(initiator=i % 7, group_size=3, radius=1, acquaintance=1) for i in range(20)
        ]
        parts = shard_map.partition(queries)
        seen = sorted(index for entries in parts.values() for index, _ in entries)
        assert seen == list(range(20))
        for shard, entries in parts.items():
            indices = [index for index, _ in entries]
            assert indices == sorted(indices)  # submission order within a shard
            for index, query in entries:
                assert queries[index] is query
                assert shard_map.shard_of(query.initiator) == shard

    def test_partition_groups_initiators_together(self):
        shard_map = ShardMap(4)
        queries = [
            SGQuery(initiator=initiator, group_size=3, radius=1, acquaintance=1)
            for initiator in (5, 9, 5, 9, 5)
        ]
        parts = shard_map.partition(queries)
        for entries in parts.values():
            initiators = {query.initiator for _, query in entries}
            for initiator in initiators:
                # every query from this initiator landed on this one shard
                shard = shard_map.shard_of(initiator)
                assert all(
                    shard_map.shard_of(q.initiator) == shard
                    for _, q in entries
                    if q.initiator == initiator
                )

    def test_rejects_non_positive_shard_count(self):
        with pytest.raises(QueryError):
            ShardMap(0)


class TestRouteMetrics:
    """The rolling imbalance metric that replaced the fire-once warning."""

    @staticmethod
    def _skewed_batch(shard_map, n_queries):
        """Every query routed to one shard: maximal imbalance."""
        hot = next(
            v for v in range(1000) if shard_map.shard_of(v) == 0
        )
        return [
            SGQuery(initiator=hot, group_size=3, radius=1, acquaintance=1)
            for _ in range(n_queries)
        ]

    def test_skewed_batch_counts_into_report(self):
        shard_map = ShardMap(4)
        batch = self._skewed_batch(shard_map, 16)
        assert shard_map.imbalance(batch) > 1.5
        shard_map.partition(batch)
        report = shard_map.route_report()
        assert report["strategy"] == "crc32"
        assert report["version"] == 0
        assert report["batches"] == 1
        assert report["queries"] == 16
        assert report["measured_batches"] == 1
        assert report["skewed_batches"] == 1
        assert report["last_imbalance"] == pytest.approx(4.0)
        assert report["max_imbalance"] == pytest.approx(4.0)
        assert report["routed"] == [16, 0, 0, 0]
        assert report["imbalance_threshold"] == 1.5

    def test_balanced_batch_is_measured_not_skewed(self):
        shard_map = ShardMap(2)
        initiators = [v for v in range(100) if shard_map.shard_of(v) == 0][:8]
        initiators += [v for v in range(100) if shard_map.shard_of(v) == 1][:8]
        batch = [
            SGQuery(initiator=v, group_size=3, radius=1, acquaintance=1) for v in initiators
        ]
        shard_map.partition(batch)
        report = shard_map.route_report()
        assert report["measured_batches"] == 1
        assert report["skewed_batches"] == 0
        assert report["last_imbalance"] == pytest.approx(1.0)
        assert report["routed"] == [8, 8]

    def test_metric_rolls_across_batches(self):
        # The old design warned once then went silent; the metric keeps
        # counting so an operator sees a *persistently* skewed stream.
        shard_map = ShardMap(4)
        batch = self._skewed_batch(shard_map, 16)
        for _ in range(3):
            shard_map.partition(batch)
        report = shard_map.route_report()
        assert report["batches"] == 3
        assert report["skewed_batches"] == 3
        assert report["max_imbalance"] == pytest.approx(4.0)
        assert report["routed"] == [48, 0, 0, 0]

    def test_skew_logs_at_debug_only(self, caplog):
        # Observability lives in route_report(); the log line never exceeds
        # DEBUG, so a skewed stream cannot flood the logs.
        shard_map = ShardMap(4)
        batch = self._skewed_batch(shard_map, 16)
        with caplog.at_level("DEBUG", logger="repro.service.sharding"):
            for _ in range(3):
                shard_map.partition(batch)
        imbalance = [r for r in caplog.records if "shard imbalance" in r.message]
        assert [r.levelname for r in imbalance] == ["DEBUG", "DEBUG", "DEBUG"]

    def test_tiny_batches_route_but_are_not_measured(self):
        # A single query on a 4-shard map is trivially "4x imbalanced";
        # measuring it would poison max_imbalance on every solve() call.
        shard_map = ShardMap(4)
        batch = self._skewed_batch(shard_map, 7)  # below 2 * n_shards
        shard_map.partition(batch)
        report = shard_map.route_report()
        assert report["batches"] == 1
        assert report["queries"] == 7
        assert report["measured_batches"] == 0
        assert report["skewed_batches"] == 0
        assert report["last_imbalance"] == 0.0
        assert report["routed"] == [7, 0, 0, 0]

    def test_crc32_map_never_replicates(self):
        shard_map = ShardMap(4)
        for vertex in list(range(25)) + ["alice", ("compound", 3)]:
            group = shard_map.replicas_of(vertex)
            assert group == (shard_map.shard_of(vertex),)
