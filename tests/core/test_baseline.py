"""Unit tests for the brute-force baseline solvers."""


import pytest

from tests.conftest import make_random_calendars, make_random_graph

from repro.core import BaselineSGQ, BaselineSTGQ, SGQuery, STGQuery, baseline_sg, baseline_stg
from repro.temporal import CalendarStore, Schedule


class TestBaselineSGQ:
    def test_toy_example(self, toy_dataset):
        result = BaselineSGQ(toy_dataset.graph).solve(SGQuery("v7", 4, 1, 1))
        assert result.feasible
        assert result.members == frozenset({"v2", "v3", "v4", "v7"})
        assert result.total_distance == pytest.approx(62.0)

    def test_single_person(self, toy_dataset):
        result = BaselineSGQ(toy_dataset.graph).solve(SGQuery("v7", 1, 1, 0))
        assert result.members == frozenset({"v7"})
        assert result.total_distance == 0.0

    def test_infeasible_when_k_too_strict(self, star_graph):
        result = BaselineSGQ(star_graph).solve(SGQuery("q", 3, 1, 0))
        assert not result.feasible

    def test_infeasible_when_too_few_candidates(self, triangle_graph):
        result = BaselineSGQ(triangle_graph).solve(SGQuery("q", 6, 1, 5))
        assert not result.feasible

    def test_max_groups_cap(self, toy_dataset):
        with pytest.raises(ValueError):
            BaselineSGQ(toy_dataset.graph).solve(SGQuery("v7", 4, 1, 1), max_groups=3)

    def test_allowed_candidates_restriction(self, toy_dataset):
        result = BaselineSGQ(toy_dataset.graph).solve(
            SGQuery("v7", 4, 1, 1), allowed_candidates={"v2", "v4", "v6"}
        )
        assert result.members == frozenset({"v7", "v2", "v4", "v6"})

    def test_enumeration_count(self, toy_dataset):
        result = BaselineSGQ(toy_dataset.graph).solve(SGQuery("v7", 4, 1, 1))
        # C(5, 3) = 10 candidate groups, as in the paper's Example 1.
        assert result.stats.nodes_expanded == 10

    def test_convenience_wrapper(self, toy_dataset):
        result = baseline_sg(toy_dataset.graph, "v7", 4, 1, 1)
        assert result.total_distance == pytest.approx(62.0)


class TestBaselineSTGQ:
    def test_toy_example(self, toy_dataset):
        result = BaselineSTGQ(toy_dataset.graph, toy_dataset.calendars).solve(
            STGQuery("v7", 4, 1, 1, 3)
        )
        assert result.feasible
        assert result.members == frozenset({"v2", "v4", "v6", "v7"})
        assert result.period.as_tuple() == (2, 4)

    def test_inner_variants_agree(self, toy_dataset):
        query = STGQuery("v7", 4, 1, 1, 3)
        a = BaselineSTGQ(toy_dataset.graph, toy_dataset.calendars, inner="sgselect").solve(query)
        b = BaselineSTGQ(toy_dataset.graph, toy_dataset.calendars, inner="bruteforce").solve(query)
        assert a.matches(b)

    def test_invalid_inner_rejected(self, toy_dataset):
        with pytest.raises(ValueError):
            BaselineSTGQ(toy_dataset.graph, toy_dataset.calendars, inner="magic")

    def test_infeasible_when_no_common_window(self, triangle_graph):
        cal = CalendarStore(4)
        cal.set("q", Schedule.from_string("OO.."))
        cal.set("a", Schedule.from_string("..OO"))
        cal.set("b", Schedule.from_string("..OO"))
        result = BaselineSTGQ(triangle_graph, cal).solve(STGQuery("q", 3, 1, 1, 2))
        assert not result.feasible

    def test_period_count_in_stats(self, toy_dataset):
        result = BaselineSTGQ(toy_dataset.graph, toy_dataset.calendars).solve(
            STGQuery("v7", 4, 1, 1, 3)
        )
        # Horizon 7, m = 3 -> 5 candidate periods examined.
        assert result.stats.pivots_processed == 5

    def test_convenience_wrapper(self, toy_dataset):
        result = baseline_stg(toy_dataset.graph, toy_dataset.calendars, "v7", 4, 1, 1, 3)
        assert result.feasible

    @pytest.mark.parametrize("seed", range(4))
    def test_inner_variants_agree_on_random_instances(self, seed):
        graph = make_random_graph(seed, n=8, edge_prob=0.5)
        cal = make_random_calendars(seed, graph.vertices(), horizon=8, availability=0.6)
        query = STGQuery(0, 3, 2, 1, 2)
        a = BaselineSTGQ(graph, cal, inner="sgselect").solve(query)
        b = BaselineSTGQ(graph, cal, inner="bruteforce").solve(query)
        assert a.matches(b)
