"""Unit and cross-check tests for Algorithm STGSelect."""


import pytest

from tests.conftest import make_random_calendars, make_random_graph

from repro.core import (
    BaselineSTGQ,
    STGQuery,
    STGSelect,
    SearchParameters,
    check_stg_solution,
    stg_select,
)
from repro.exceptions import InfeasibleQueryError, ScheduleError
from repro.graph import SocialGraph
from repro.temporal import CalendarStore, Schedule, SlotRange


def everyone_free(graph, horizon=8):
    cal = CalendarStore(horizon)
    for v in graph.vertices():
        cal.set(v, Schedule.always_available(horizon))
    return cal


class TestBasics:
    def test_single_person_group(self, triangle_graph):
        cal = everyone_free(triangle_graph)
        result = STGSelect(triangle_graph, cal).solve(STGQuery("q", 1, 1, 0, 3))
        assert result.feasible
        assert result.members == frozenset({"q"})
        assert len(result.period) == 3

    def test_everyone_free_matches_sgq(self, toy_dataset):
        """With unconstrained calendars STGQ degenerates to SGQ."""
        from repro.core import SGSelect, SGQuery

        cal = everyone_free(toy_dataset.graph, horizon=10)
        stg = STGSelect(toy_dataset.graph, cal).solve(STGQuery("v7", 4, 1, 1, 3))
        sg = SGSelect(toy_dataset.graph).solve(SGQuery("v7", 4, 1, 1))
        assert stg.feasible
        assert stg.total_distance == pytest.approx(sg.total_distance)

    def test_period_length_and_pivot(self, toy_dataset):
        result = STGSelect(toy_dataset.graph, toy_dataset.calendars).solve(
            STGQuery("v7", 4, 1, 1, 3)
        )
        assert result.feasible
        assert len(result.period) == 3
        assert result.pivot in result.shared_slots
        assert result.pivot % 3 == 0
        assert result.shared_slots.contains_range(result.period)

    def test_busy_initiator_infeasible(self, triangle_graph):
        cal = everyone_free(triangle_graph)
        cal.set("q", Schedule.never_available(cal.horizon))
        result = STGSelect(triangle_graph, cal).solve(STGQuery("q", 2, 1, 1, 2))
        assert not result.feasible

    def test_no_common_window_infeasible(self, triangle_graph):
        cal = CalendarStore(6)
        cal.set("q", Schedule.from_string("OOO..."))
        cal.set("a", Schedule.from_string("...OOO"))
        cal.set("b", Schedule.from_string("OOOOOO"))
        result = STGSelect(triangle_graph, cal).solve(STGQuery("q", 3, 1, 1, 2))
        assert not result.feasible

    def test_activity_longer_than_horizon_rejected(self, triangle_graph):
        cal = everyone_free(triangle_graph, horizon=4)
        with pytest.raises(ScheduleError):
            STGSelect(triangle_graph, cal).solve(STGQuery("q", 2, 1, 1, 5))

    def test_on_infeasible_raise(self, triangle_graph):
        cal = CalendarStore(6)  # nobody registered -> nobody available
        with pytest.raises(InfeasibleQueryError):
            STGSelect(triangle_graph, cal).solve(
                STGQuery("q", 2, 1, 1, 2), on_infeasible="raise"
            )

    def test_solver_name_and_stats(self, toy_dataset):
        result = STGSelect(toy_dataset.graph, toy_dataset.calendars).solve(
            STGQuery("v7", 4, 1, 1, 3)
        )
        assert result.solver == "STGSelect"
        assert result.stats.pivots_processed >= 1
        assert result.stats.nodes_expanded > 0

    def test_convenience_wrapper(self, toy_dataset):
        result = stg_select(toy_dataset.graph, toy_dataset.calendars, "v7", 4, 1, 1, 3)
        assert result.feasible
        assert result.members == frozenset({"v2", "v4", "v6", "v7"})


class TestTemporalSemantics:
    def test_prefers_cheaper_group_when_schedule_allows(self):
        """The optimal group should switch when the cheap friend becomes busy."""
        graph = SocialGraph()
        graph.add_edge("q", "cheap", 1.0)
        graph.add_edge("q", "pricey", 10.0)
        cal = CalendarStore(6)
        cal.set("q", Schedule.always_available(6))
        cal.set("cheap", Schedule.from_string("OOO..."))
        cal.set("pricey", Schedule.always_available(6))
        early = STGSelect(graph, cal).solve(STGQuery("q", 2, 1, 1, 3))
        assert early.members == frozenset({"q", "cheap"})
        assert early.period == SlotRange(1, 3)
        # Make the cheap friend unavailable: the pricey friend must be chosen.
        cal.set("cheap", Schedule.never_available(6))
        late = STGSelect(graph, cal).solve(STGQuery("q", 2, 1, 1, 3))
        assert late.members == frozenset({"q", "pricey"})

    def test_period_fits_everyones_schedule(self, toy_dataset):
        query = STGQuery("v7", 4, 1, 1, 3)
        result = STGSelect(toy_dataset.graph, toy_dataset.calendars).solve(query)
        report = check_stg_solution(
            toy_dataset.graph, toy_dataset.calendars, query, result.members, result.period
        )
        assert report.ok

    def test_longer_activity_changes_feasibility(self, toy_dataset):
        short = STGSelect(toy_dataset.graph, toy_dataset.calendars).solve(
            STGQuery("v7", 4, 1, 1, 3)
        )
        long = STGSelect(toy_dataset.graph, toy_dataset.calendars).solve(
            STGQuery("v7", 4, 1, 1, 6)
        )
        assert short.feasible
        assert not long.feasible

    def test_m_equals_one_considers_every_slot(self, toy_dataset):
        result = STGSelect(toy_dataset.graph, toy_dataset.calendars).solve(
            STGQuery("v7", 4, 1, 1, 1)
        )
        assert result.feasible
        assert len(result.period) == 1


class TestStrategyToggles:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"use_access_ordering": False},
            {"use_distance_pruning": False},
            {"use_acquaintance_pruning": False},
            {"use_availability_pruning": False},
            {"use_pivot_slots": False},
            {
                "use_access_ordering": False,
                "use_distance_pruning": False,
                "use_acquaintance_pruning": False,
                "use_availability_pruning": False,
                "use_pivot_slots": False,
            },
        ],
    )
    def test_strategies_do_not_change_optimum(self, overrides):
        for seed in range(5):
            graph = make_random_graph(seed, n=9, edge_prob=0.45)
            cal = make_random_calendars(seed, graph.vertices(), horizon=9, availability=0.6)
            query = STGQuery(0, 3, 2, 1, 2)
            reference = STGSelect(graph, cal).solve(query)
            variant = STGSelect(graph, cal, SearchParameters(**overrides)).solve(query)
            assert reference.matches(variant), (seed, overrides)


class TestOptimalityCrossCheck:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_per_period_baseline(self, seed):
        graph = make_random_graph(seed, n=9, edge_prob=0.45)
        cal = make_random_calendars(seed + 100, graph.vertices(), horizon=10, availability=0.55)
        for p, s, k, m in [(3, 1, 1, 2), (4, 2, 1, 3), (3, 2, 0, 2), (4, 2, 2, 1)]:
            query = STGQuery(0, p, s, k, m)
            fast = STGSelect(graph, cal).solve(query)
            slow = BaselineSTGQ(graph, cal, inner="bruteforce").solve(query)
            assert fast.matches(slow), (seed, p, s, k, m)
            if fast.feasible:
                assert check_stg_solution(graph, cal, query, fast.members, fast.period).ok
