"""Unit tests for the PCArrange manual-coordination heuristic."""

import pytest

from repro.core import PCArrange, STGQuery, STGSelect, check_stg_solution, pc_arrange
from repro.temporal import CalendarStore, Schedule


class TestPCArrange:
    def test_invites_closest_friends_when_everyone_is_free(self, toy_dataset):
        cal = CalendarStore(7)
        for person in toy_dataset.graph.vertices():
            cal.set(person, Schedule.always_available(7))
        result = PCArrange(toy_dataset.graph, cal).solve(STGQuery("v7", 4, 1, 4, 3))
        # Closest-first coordination: v2 (17), v3 (18), v6 (23).
        assert result.feasible
        assert result.members == frozenset({"v7", "v2", "v3", "v6"})
        assert result.total_distance == pytest.approx(17.0 + 18.0 + 23.0)

    def test_skips_friends_without_common_window(self, toy_dataset):
        result = PCArrange(toy_dataset.graph, toy_dataset.calendars).solve(
            STGQuery("v7", 4, 1, 4, 3)
        )
        assert result.feasible
        # v3 would break the 3-slot common window, so the coordinator skips it.
        assert "v3" not in result.members
        assert result.members == frozenset({"v7", "v2", "v4", "v6"})

    def test_period_is_valid_for_all_members(self, toy_dataset):
        query = STGQuery("v7", 4, 1, 4, 3)
        result = PCArrange(toy_dataset.graph, toy_dataset.calendars).solve(query)
        report = check_stg_solution(
            toy_dataset.graph, toy_dataset.calendars, query, result.members, result.period
        )
        # PCArrange ignores the acquaintance constraint, so only availability,
        # size and radius are expected to hold.
        assert report.size_ok and report.radius_ok and report.availability_ok

    def test_infeasible_when_initiator_has_no_window(self, toy_dataset):
        cal = CalendarStore(7)
        for person in toy_dataset.graph.vertices():
            cal.set(person, Schedule.always_available(7))
        cal.set("v7", Schedule.from_string("O.O.O.O"))
        result = PCArrange(toy_dataset.graph, cal).solve(STGQuery("v7", 3, 1, 3, 3))
        assert not result.feasible

    def test_infeasible_when_not_enough_friends_can_attend(self, toy_dataset):
        result = PCArrange(toy_dataset.graph, toy_dataset.calendars).solve(
            STGQuery("v7", 6, 1, 6, 3)
        )
        assert not result.feasible

    def test_observed_k(self, toy_dataset):
        pc = PCArrange(toy_dataset.graph, toy_dataset.calendars)
        result = pc.solve(STGQuery("v7", 4, 1, 4, 3))
        # {v7, v2, v4, v6} is a clique in the toy graph -> observed k = 0.
        assert pc.observed_k(result) == 0
        assert pc.observed_k(result.__class__.infeasible()) == 0

    def test_never_beats_stgselect_given_observed_k(self, toy_dataset):
        """STGSelect run with PCArrange's observed k must be at least as good."""
        pc = PCArrange(toy_dataset.graph, toy_dataset.calendars)
        result = pc.solve(STGQuery("v7", 4, 1, 4, 3))
        k_h = pc.observed_k(result)
        optimal = STGSelect(toy_dataset.graph, toy_dataset.calendars).solve(
            STGQuery("v7", 4, 1, k_h, 3)
        )
        assert optimal.feasible
        assert optimal.total_distance <= result.total_distance

    def test_convenience_wrapper(self, toy_dataset):
        result = pc_arrange(toy_dataset.graph, toy_dataset.calendars, "v7", 4, 1, 3)
        assert result.feasible
        assert result.solver == "PCArrange"
