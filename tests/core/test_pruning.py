"""Unit tests for the pruning strategies (Lemmas 2, 3 and 5)."""

import math


from repro.core import acquaintance_pruning, availability_pruning, distance_pruning
from repro.graph import SocialGraph
from repro.temporal import CalendarStore, Schedule
from repro.temporal.pivot import pivot_window


class TestDistancePruning:
    def test_never_fires_without_incumbent(self):
        assert not distance_pruning(math.inf, 10.0, 2, 4, [1.0, 2.0])

    def test_paper_example_fires(self):
        """Example 2: D = 62, VS = {v7, v3} (sum 18), two more needed, min 23."""
        assert distance_pruning(62.0, 18.0, 2, 4, [27.0, 23.0, 25.0])

    def test_does_not_fire_when_budget_sufficient(self):
        assert not distance_pruning(62.0, 17.0, 2, 4, [18.0, 23.0])

    def test_complete_group_never_pruned(self):
        assert not distance_pruning(10.0, 50.0, 4, 4, [1.0])

    def test_empty_candidate_set_not_pruned_here(self):
        assert not distance_pruning(10.0, 0.0, 1, 4, [])

    def test_soundness_on_boundary(self):
        """Equality is not pruned: a completion exactly matching the incumbent
        is allowed to surface (it does not change the optimum)."""
        assert not distance_pruning(10.0, 4.0, 2, 4, [3.0])
        assert distance_pruning(10.0, 4.1, 2, 4, [3.0])


class TestAcquaintancePruning:
    def test_paper_example_fires(self, toy_dataset):
        """Example 2: VS = {v7}, VA = {v4, v6, v8}, p = 4, k = 1 is pruned."""
        assert acquaintance_pruning(
            toy_dataset.graph, ["v4", "v6", "v8"], members_count=1, group_size=4, acquaintance=1
        )

    def test_does_not_fire_on_connected_candidates(self, toy_dataset):
        assert not acquaintance_pruning(
            toy_dataset.graph, ["v2", "v4", "v6"], members_count=1, group_size=4, acquaintance=1
        )

    def test_lemma3_as_printed_would_overprune(self):
        """Counter-example for the paper's original bound (see DESIGN.md §5):
        the initiator knows both candidates, the candidates do not know each
        other, and k = 1 — the group {q, a, b} is feasible, yet the printed
        bound (p - |VS|)(p - |VS| - k) = 2 exceeds the achievable inner degree
        of 0.  The corrected rule must NOT prune this state."""
        graph = SocialGraph()
        graph.add_edge("q", "a", 1.0)
        graph.add_edge("q", "b", 1.0)
        assert not acquaintance_pruning(graph, ["a", "b"], members_count=1, group_size=3, acquaintance=1)
        # For reference: the group really is feasible.
        from repro.graph import is_kplex

        assert is_kplex(graph, ["q", "a", "b"], 1)

    def test_fires_when_candidates_too_sparse(self):
        """Choosing 3 mutually unacquainted candidates with k = 0 is impossible."""
        graph = SocialGraph()
        for name in ("a", "b", "c"):
            graph.add_edge("q", name, 1.0)
        assert acquaintance_pruning(graph, ["a", "b", "c"], members_count=1, group_size=4, acquaintance=0)

    def test_never_fires_when_requirement_non_positive(self, star_graph):
        assert not acquaintance_pruning(star_graph, ["a", "b"], members_count=2, group_size=4, acquaintance=3)

    def test_never_fires_with_empty_candidates(self, star_graph):
        assert not acquaintance_pruning(star_graph, [], members_count=1, group_size=4, acquaintance=0)

    def test_never_fires_when_group_complete(self, star_graph):
        assert not acquaintance_pruning(star_graph, ["a"], members_count=4, group_size=4, acquaintance=0)


class TestAvailabilityPruning:
    def make_calendars(self, patterns, horizon):
        cal = CalendarStore(horizon)
        for person, pattern in patterns.items():
            cal.set(person, Schedule.from_string(pattern))
        return cal

    def test_paper_example_fires(self, toy_dataset):
        """Example 3: pivot ts6, VS = {v2, v7}, VA = {v3, v6, v8}, m = 3."""
        window = pivot_window(pivot=6, activity_length=3, horizon=7)
        assert availability_pruning(
            toy_dataset.calendars,
            remaining=["v3", "v6", "v8"],
            members_count=2,
            group_size=4,
            window=window,
        )

    def test_does_not_fire_when_candidates_available(self):
        cal = self.make_calendars({"a": "OOOOOO", "b": "OOOOOO"}, horizon=6)
        window = pivot_window(pivot=3, activity_length=3, horizon=6)
        assert not availability_pruning(cal, ["a", "b"], members_count=2, group_size=4, window=window)

    def test_fires_when_all_candidates_busy_near_pivot(self):
        # Both candidates are busy right before and right after the pivot.
        cal = self.make_calendars({"a": ".OOO..", "b": ".OOO.."}, horizon=6)
        window = pivot_window(pivot=3, activity_length=3, horizon=6)
        # Window is [1, 5]; slot 1 and slot 5 are busy for everyone, leaving
        # only slots 2-4 (3 slots) -> not prunable for m = 3 ...
        assert not availability_pruning(cal, ["a", "b"], members_count=2, group_size=4, window=window)
        # ... but for candidates busy at slot 4 the shared corridor shrinks to
        # 2 slots, so the state is prunable.
        cal2 = self.make_calendars({"a": ".OO.O.", "b": ".OO.O."}, horizon=6)
        assert availability_pruning(cal2, ["a", "b"], members_count=2, group_size=4, window=window)

    def test_threshold_respects_spare_candidates(self):
        """With more candidates than needed, a single busy person near the
        pivot must not trigger the prune."""
        cal = self.make_calendars({"a": "OOOOOO", "b": "OOOOOO", "c": "......"}, horizon=6)
        window = pivot_window(pivot=3, activity_length=3, horizon=6)
        assert not availability_pruning(cal, ["a", "b", "c"], members_count=2, group_size=4, window=window)

    def test_never_fires_when_group_complete(self):
        cal = self.make_calendars({"a": "......"}, horizon=6)
        window = pivot_window(pivot=3, activity_length=3, horizon=6)
        assert not availability_pruning(cal, ["a"], members_count=4, group_size=4, window=window)

    def test_never_fires_with_too_few_candidates(self):
        cal = self.make_calendars({"a": "......"}, horizon=6)
        window = pivot_window(pivot=3, activity_length=3, horizon=6)
        assert not availability_pruning(cal, ["a"], members_count=1, group_size=4, window=window)
