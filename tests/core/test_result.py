"""Unit tests for result objects and search statistics."""

import math

import pytest

from repro.core import GroupResult, STGroupResult, SearchStats
from repro.temporal import SlotRange


class TestSearchStats:
    def test_defaults_are_zero(self):
        stats = SearchStats()
        assert stats.nodes_expanded == 0
        assert stats.elapsed_seconds == 0.0

    def test_merge_accumulates(self):
        a = SearchStats(nodes_expanded=3, distance_prunes=1, elapsed_seconds=0.5)
        b = SearchStats(nodes_expanded=2, acquaintance_prunes=4, elapsed_seconds=0.25)
        a.merge(b)
        assert a.nodes_expanded == 5
        assert a.distance_prunes == 1
        assert a.acquaintance_prunes == 4
        assert a.elapsed_seconds == pytest.approx(0.75)

    def test_as_dict_contains_all_counters(self):
        d = SearchStats(nodes_expanded=7).as_dict()
        assert d["nodes_expanded"] == 7
        assert "availability_prunes" in d
        assert "pivots_processed" in d


class TestGroupResult:
    def test_infeasible_constructor(self):
        r = GroupResult.infeasible(solver="X")
        assert not r.feasible
        assert r.members == frozenset()
        assert r.total_distance == math.inf
        assert r.size == 0

    def test_size_and_sorted_members(self):
        r = GroupResult(True, frozenset({"b", "a", "q"}), 3.0, solver="X")
        assert r.size == 3
        assert r.sorted_members() == ["'a'", "'b'", "'q'"] or r.sorted_members() == ["a", "b", "q"]

    def test_matches_on_distance_not_membership(self):
        a = GroupResult(True, frozenset({"a", "q"}), 5.0)
        b = GroupResult(True, frozenset({"b", "q"}), 5.0)
        c = GroupResult(True, frozenset({"b", "q"}), 6.0)
        assert a.matches(b)
        assert not a.matches(c)

    def test_matches_infeasible_pairs(self):
        assert GroupResult.infeasible().matches(GroupResult.infeasible())
        assert not GroupResult.infeasible().matches(GroupResult(True, frozenset({"q"}), 0.0))


class TestSTGroupResult:
    def test_infeasible_constructor(self):
        r = STGroupResult.infeasible(solver="Y")
        assert not r.feasible
        assert r.period is None
        assert r.pivot is None

    def test_social_projection(self):
        r = STGroupResult(
            feasible=True,
            members=frozenset({"q", "a"}),
            total_distance=2.0,
            period=SlotRange(2, 4),
            pivot=3,
            shared_slots=SlotRange(1, 5),
            solver="STGSelect",
        )
        social = r.social_result()
        assert isinstance(social, GroupResult)
        assert social.members == r.members
        assert social.total_distance == 2.0

    def test_matches(self):
        a = STGroupResult(True, frozenset({"q"}), 1.0, period=SlotRange(1, 2))
        b = STGroupResult(True, frozenset({"q"}), 1.0, period=SlotRange(3, 4))
        c = STGroupResult(True, frozenset({"q"}), 2.0, period=SlotRange(1, 2))
        assert a.matches(b)
        assert not a.matches(c)
        assert not a.matches(STGroupResult.infeasible())

    def test_sorted_members(self):
        r = STGroupResult(True, frozenset({3, 1, 2}), 1.0)
        assert r.sorted_members() == [1, 2, 3]
