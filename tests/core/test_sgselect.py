"""Unit and cross-check tests for Algorithm SGSelect."""

import math

import pytest

from tests.conftest import make_random_graph
from repro.core import BaselineSGQ, SGQuery, SGSelect, SearchParameters, check_sg_solution, sg_select
from repro.exceptions import InfeasibleQueryError


class TestBasics:
    def test_single_person_group(self, triangle_graph):
        result = SGSelect(triangle_graph).solve(SGQuery("q", 1, 1, 0))
        assert result.feasible
        assert result.members == frozenset({"q"})
        assert result.total_distance == 0.0

    def test_pair_selects_closest_friend(self, star_graph):
        result = SGSelect(star_graph).solve(SGQuery("q", 2, 1, 0))
        assert result.members == frozenset({"q", "a"})
        assert result.total_distance == 1.0

    def test_triangle_clique(self, triangle_graph):
        result = SGSelect(triangle_graph).solve(SGQuery("q", 3, 1, 0))
        assert result.feasible
        assert result.total_distance == pytest.approx(3.0)

    def test_star_with_strict_k_infeasible(self, star_graph):
        result = SGSelect(star_graph).solve(SGQuery("q", 3, 1, 0))
        assert not result.feasible
        assert result.total_distance == math.inf

    def test_star_with_loose_k_feasible(self, star_graph):
        result = SGSelect(star_graph).solve(SGQuery("q", 3, 1, 1))
        assert result.feasible
        assert result.members == frozenset({"q", "a", "b"})

    def test_not_enough_candidates(self, triangle_graph):
        result = SGSelect(triangle_graph).solve(SGQuery("q", 5, 1, 4))
        assert not result.feasible

    def test_on_infeasible_raise(self, star_graph):
        with pytest.raises(InfeasibleQueryError):
            SGSelect(star_graph).solve(SGQuery("q", 3, 1, 0), on_infeasible="raise")

    def test_solver_name_and_stats(self, toy_dataset):
        result = SGSelect(toy_dataset.graph).solve(SGQuery("v7", 4, 1, 1))
        assert result.solver == "SGSelect"
        assert result.stats.nodes_expanded > 0
        assert result.stats.elapsed_seconds >= 0.0

    def test_convenience_wrapper(self, toy_dataset):
        result = sg_select(toy_dataset.graph, "v7", 4, 1, 1)
        assert result.total_distance == pytest.approx(62.0)


class TestRadiusSemantics:
    def test_radius_one_excludes_second_hop(self, two_hop_graph):
        graph = two_hop_graph
        graph.add_edge("a", "c", 1.0)  # c is two hops from q
        result = SGSelect(graph).solve(SGQuery("q", 3, 1, 2))
        assert "c" not in result.members

    def test_radius_two_uses_cheaper_path_distance(self, two_hop_graph):
        result1 = SGSelect(two_hop_graph).solve(SGQuery("q", 3, 1, 2))
        result2 = SGSelect(two_hop_graph).solve(SGQuery("q", 3, 2, 2))
        assert result1.total_distance == pytest.approx(11.0)  # 1 + 10 via direct edge
        assert result2.total_distance == pytest.approx(3.0)  # 1 + (1 + 1) via a

    def test_initiator_must_exist(self, triangle_graph):
        from repro.exceptions import VertexNotFoundError

        with pytest.raises(VertexNotFoundError):
            SGSelect(triangle_graph).solve(SGQuery("ghost", 2, 1, 0))


class TestAllowedCandidates:
    def test_restriction_changes_answer(self, toy_dataset):
        query = SGQuery("v7", 4, 1, 1)
        unrestricted = SGSelect(toy_dataset.graph).solve(query)
        restricted = SGSelect(toy_dataset.graph).solve(
            query, allowed_candidates={"v2", "v4", "v6"}
        )
        assert unrestricted.total_distance == pytest.approx(62.0)
        assert restricted.members == frozenset({"v7", "v2", "v4", "v6"})
        assert restricted.total_distance == pytest.approx(67.0)

    def test_restriction_to_too_few_candidates(self, toy_dataset):
        result = SGSelect(toy_dataset.graph).solve(
            SGQuery("v7", 4, 1, 1), allowed_candidates={"v2"}
        )
        assert not result.feasible

    def test_distances_still_measured_on_full_graph(self, two_hop_graph):
        # Restricting candidates to {b} must not change b's two-edge distance.
        result = SGSelect(two_hop_graph).solve(
            SGQuery("q", 2, 2, 1), allowed_candidates={"b"}
        )
        assert result.members == frozenset({"q", "b"})
        assert result.total_distance == pytest.approx(2.0)


class TestStrategyToggles:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"use_access_ordering": False},
            {"use_distance_pruning": False},
            {"use_acquaintance_pruning": False},
            {"theta": 0},
            {"theta": 5},
            {
                "use_access_ordering": False,
                "use_distance_pruning": False,
                "use_acquaintance_pruning": False,
            },
        ],
    )
    def test_strategies_do_not_change_optimum(self, overrides):
        """Disabling any pruning/ordering strategy must never change the
        returned optimal distance (only the amount of work)."""
        for seed in range(6):
            graph = make_random_graph(seed, n=11, edge_prob=0.45)
            query = SGQuery(0, 4, 2, 1)
            reference = SGSelect(graph).solve(query)
            variant = SGSelect(graph, SearchParameters(**overrides)).solve(query)
            assert reference.matches(variant), (seed, overrides)

    def test_pruning_reduces_nodes(self):
        graph = make_random_graph(3, n=14, edge_prob=0.5)
        query = SGQuery(0, 5, 2, 1)
        with_pruning = SGSelect(graph).solve(query)
        without = SGSelect(
            graph,
            SearchParameters(use_distance_pruning=False, use_acquaintance_pruning=False),
        ).solve(query)
        assert with_pruning.stats.nodes_expanded <= without.stats.nodes_expanded


class TestOptimalityCrossCheck:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_bruteforce_on_random_graphs(self, seed):
        graph = make_random_graph(seed, n=10, edge_prob=0.4)
        for p, s, k in [(3, 1, 1), (4, 2, 0), (4, 2, 2), (5, 2, 1), (3, 3, 0)]:
            query = SGQuery(0, p, s, k)
            fast = SGSelect(graph).solve(query)
            slow = BaselineSGQ(graph).solve(query)
            assert fast.matches(slow), (seed, p, s, k)
            if fast.feasible:
                assert check_sg_solution(graph, query, fast.members).ok

    def test_solution_satisfies_all_constraints(self, toy_dataset):
        for k in (0, 1, 2):
            query = SGQuery("v7", 4, 1, k)
            result = SGSelect(toy_dataset.graph).solve(query)
            if result.feasible:
                assert check_sg_solution(toy_dataset.graph, query, result.members).ok
