"""Unit tests for STGArrange (quality comparison against PCArrange)."""

import math

import pytest

from repro.core import PCArrange, STGArrange, STGQuery
from repro.graph import SocialGraph
from repro.temporal import CalendarStore, Schedule


class TestSTGArrange:
    def test_outcome_on_toy_dataset(self, toy_dataset):
        outcome = STGArrange(toy_dataset.graph, toy_dataset.calendars).compare(
            initiator="v7", group_size=4, radius=1, activity_length=3
        )
        assert outcome.pcarrange.feasible
        assert outcome.stgarrange.feasible
        assert outcome.stgarrange_k is not None
        # STGSelect at the chosen k is never worse than manual coordination.
        assert outcome.stgarrange.total_distance <= outcome.pcarrange.total_distance
        # And the chosen k is never larger than the observed k of PCArrange.
        assert outcome.stgarrange_k <= outcome.pcarrange_k
        assert outcome.distance_improvement >= 0.0
        assert outcome.k_improvement is not None and outcome.k_improvement >= 0

    def test_finds_smaller_k_when_manual_coordination_is_careless(self):
        """A case engineered so closest-first coordination produces a loose
        group (k_h = 2) while the optimal mutually-acquainted group costs no
        more: STGArrange must report a strictly smaller k."""
        graph = SocialGraph()
        # Two close friends who know nobody else, and a slightly farther
        # clique of three.
        graph.add_edge("q", "loner1", 1.0)
        graph.add_edge("q", "loner2", 2.0)
        graph.add_edge("q", "c1", 3.0)
        graph.add_edge("q", "c2", 3.0)
        graph.add_edge("q", "c3", 3.0)
        graph.add_edge("c1", "c2", 1.0)
        graph.add_edge("c1", "c3", 1.0)
        graph.add_edge("c2", "c3", 1.0)
        horizon = 6
        cal = CalendarStore(horizon)
        for person in graph.vertices():
            cal.set(person, Schedule.always_available(horizon))

        outcome = STGArrange(graph, cal).compare(
            initiator="q", group_size=4, radius=1, activity_length=2
        )
        # Manual coordination grabs the two loners -> observed k = 2.
        assert outcome.pcarrange_k == 2
        assert outcome.pcarrange.total_distance == pytest.approx(1.0 + 2.0 + 3.0)
        # STGSelect cannot match that distance with a smaller k here, so the
        # reported k equals the first k whose optimum is no worse.
        assert outcome.stgarrange.total_distance <= outcome.pcarrange.total_distance
        assert outcome.stgarrange_k <= outcome.pcarrange_k

    def test_pcarrange_infeasible_falls_back_to_any_feasible_group(self, toy_dataset):
        """When manual coordination fails outright, STGArrange reports the
        first k that admits any feasible group."""
        outcome = STGArrange(toy_dataset.graph, toy_dataset.calendars).compare(
            initiator="v7", group_size=5, radius=1, activity_length=3
        )
        assert not outcome.pcarrange.feasible
        # The optimal 5-person group {v2, v3, v4, v6, v7} has no common
        # 3-slot window either, so both approaches fail here.
        assert not outcome.stgarrange.feasible
        assert outcome.stgarrange_k is None
        assert math.isnan(outcome.distance_improvement)
        assert outcome.k_improvement is None

    def test_max_k_limits_search(self, toy_dataset):
        outcome = STGArrange(toy_dataset.graph, toy_dataset.calendars).compare(
            initiator="v7", group_size=4, radius=1, activity_length=3, max_k=0
        )
        # k = 0 already admits the clique {v2, v4, v6, v7}; the search stops there.
        assert outcome.stgarrange_k == 0

    def test_consistency_with_direct_solvers(self, toy_dataset):
        outcome = STGArrange(toy_dataset.graph, toy_dataset.calendars).compare(
            initiator="v7", group_size=4, radius=1, activity_length=3
        )
        pc = PCArrange(toy_dataset.graph, toy_dataset.calendars).solve(
            STGQuery("v7", 4, 1, 4, 3)
        )
        assert outcome.pcarrange.total_distance == pytest.approx(pc.total_distance)
