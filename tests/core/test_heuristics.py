"""Unit tests for the greedy approximate solvers (library extension)."""


import pytest

from tests.conftest import make_random_calendars, make_random_graph

from repro.core import (
    GreedySGQ,
    GreedySTGQ,
    SGQuery,
    SGSelect,
    STGQuery,
    STGSelect,
    check_sg_solution,
    check_stg_solution,
    greedy_sg,
    greedy_stg,
)
from repro.temporal import CalendarStore, Schedule


class TestGreedySGQ:
    def test_toy_example_feasible_and_near_optimal(self, toy_dataset):
        query = SGQuery("v7", 4, 1, 1)
        greedy = GreedySGQ(toy_dataset.graph).solve(query)
        exact = SGSelect(toy_dataset.graph).solve(query)
        assert greedy.feasible
        assert check_sg_solution(toy_dataset.graph, query, greedy.members).ok
        assert greedy.total_distance >= exact.total_distance
        assert greedy.total_distance <= 1.25 * exact.total_distance

    def test_clique_preference_when_close_friends_are_strangers(self, toy_dataset):
        """With k = 0 the greedy closest-first pass gets stuck (the closest
        friends are mutual strangers) and the connectivity-ordered retry must
        recover the clique."""
        query = SGQuery("v7", 4, 1, 0)
        greedy = GreedySGQ(toy_dataset.graph).solve(query)
        assert greedy.feasible
        assert greedy.members == frozenset({"v2", "v4", "v6", "v7"})

    def test_single_person(self, toy_dataset):
        result = GreedySGQ(toy_dataset.graph).solve(SGQuery("v7", 1, 1, 0))
        assert result.members == frozenset({"v7"})
        assert result.total_distance == 0.0

    def test_infeasible_instance(self, star_graph):
        result = GreedySGQ(star_graph).solve(SGQuery("q", 3, 1, 0))
        assert not result.feasible

    def test_local_search_improves_or_keeps_distance(self):
        graph = make_random_graph(7, n=14, edge_prob=0.5)
        query = SGQuery(0, 5, 2, 1)
        no_ls = GreedySGQ(graph, local_search_rounds=0).solve(query)
        with_ls = GreedySGQ(graph, local_search_rounds=5).solve(query)
        if no_ls.feasible and with_ls.feasible:
            assert with_ls.total_distance <= no_ls.total_distance + 1e-9

    @pytest.mark.parametrize("seed", range(6))
    def test_feasible_and_never_better_than_optimal(self, seed):
        graph = make_random_graph(seed, n=12, edge_prob=0.45)
        query = SGQuery(0, 4, 2, 1)
        greedy = GreedySGQ(graph).solve(query)
        exact = SGSelect(graph).solve(query)
        if greedy.feasible:
            assert exact.feasible
            assert check_sg_solution(graph, query, greedy.members).ok
            assert greedy.total_distance >= exact.total_distance - 1e-9

    def test_convenience_wrapper(self, toy_dataset):
        assert greedy_sg(toy_dataset.graph, "v7", 4, 1, 1).feasible


class TestGreedySTGQ:
    def test_toy_example(self, toy_dataset):
        query = STGQuery("v7", 4, 1, 1, 3)
        greedy = GreedySTGQ(toy_dataset.graph, toy_dataset.calendars).solve(query)
        exact = STGSelect(toy_dataset.graph, toy_dataset.calendars).solve(query)
        assert greedy.feasible
        assert check_stg_solution(
            toy_dataset.graph, toy_dataset.calendars, query, greedy.members, greedy.period
        ).ok
        assert greedy.total_distance >= exact.total_distance - 1e-9

    def test_infeasible_when_no_common_window(self, triangle_graph):
        cal = CalendarStore(4)
        cal.set("q", Schedule.from_string("OO.."))
        cal.set("a", Schedule.from_string("..OO"))
        cal.set("b", Schedule.from_string("..OO"))
        result = GreedySTGQ(triangle_graph, cal).solve(STGQuery("q", 3, 1, 1, 2))
        assert not result.feasible

    @pytest.mark.parametrize("seed", range(4))
    def test_feasible_and_never_better_than_optimal(self, seed):
        graph = make_random_graph(seed, n=10, edge_prob=0.5)
        cal = make_random_calendars(seed + 50, graph.vertices(), horizon=10, availability=0.65)
        query = STGQuery(0, 3, 2, 1, 2)
        greedy = GreedySTGQ(graph, cal).solve(query)
        exact = STGSelect(graph, cal).solve(query)
        if greedy.feasible:
            assert exact.feasible
            assert check_stg_solution(graph, cal, query, greedy.members, greedy.period).ok
            assert greedy.total_distance >= exact.total_distance - 1e-9
        if exact.feasible and not greedy.feasible:
            # The heuristic may miss feasible instances, but on these small
            # dense instances it should rarely do so; tolerate but record.
            pytest.skip("greedy missed a feasible instance (allowed for a heuristic)")

    def test_convenience_wrapper(self, toy_dataset):
        result = greedy_stg(toy_dataset.graph, toy_dataset.calendars, "v7", 4, 1, 1, 3)
        assert result.solver == "GreedySTGQ"


class TestPlannerIntegration:
    def test_planner_exposes_greedy_algorithms(self, toy_dataset):
        from repro import ActivityPlanner

        planner = ActivityPlanner(toy_dataset.graph, toy_dataset.calendars)
        sg = planner.find_group(
            initiator="v7", group_size=4, radius=1, acquaintance=1, algorithm="greedy"
        )
        stg = planner.find_group_and_time(
            initiator="v7",
            group_size=4,
            activity_length=3,
            radius=1,
            acquaintance=1,
            algorithm="greedy",
        )
        assert sg.feasible and stg.feasible
