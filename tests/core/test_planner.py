"""Unit tests for the high-level ActivityPlanner API."""

import pytest

from repro import ActivityPlanner, SGQuery, STGQuery
from repro.exceptions import QueryError

from tests.conftest import requires_scipy


class TestFindGroup:
    def test_default_algorithm(self, toy_dataset):
        planner = ActivityPlanner(toy_dataset.graph)
        result = planner.find_group(initiator="v7", group_size=4, radius=1, acquaintance=1)
        assert result.feasible
        assert result.total_distance == pytest.approx(62.0)

    @pytest.mark.parametrize(
        "algorithm", ["sgselect", "baseline", pytest.param("ip", marks=requires_scipy)]
    )
    def test_all_algorithms_agree(self, toy_dataset, algorithm):
        planner = ActivityPlanner(toy_dataset.graph)
        result = planner.find_group(
            initiator="v7", group_size=4, radius=1, acquaintance=1, algorithm=algorithm
        )
        assert result.feasible
        assert result.total_distance == pytest.approx(62.0)

    def test_unknown_algorithm_rejected(self, toy_dataset):
        planner = ActivityPlanner(toy_dataset.graph)
        with pytest.raises(QueryError):
            planner.find_group(initiator="v7", group_size=4, algorithm="magic")

    def test_calendars_not_needed_for_social_queries(self, toy_dataset):
        planner = ActivityPlanner(toy_dataset.graph, calendars=None)
        result = planner.find_group(initiator="v7", group_size=3, radius=1, acquaintance=1)
        assert result.feasible


class TestFindGroupAndTime:
    def test_default_algorithm(self, toy_dataset):
        planner = ActivityPlanner(toy_dataset.graph, toy_dataset.calendars)
        result = planner.find_group_and_time(
            initiator="v7", group_size=4, activity_length=3, radius=1, acquaintance=1
        )
        assert result.feasible
        assert result.members == frozenset({"v2", "v4", "v6", "v7"})

    @pytest.mark.parametrize(
        "algorithm", ["stgselect", "baseline", pytest.param("ip", marks=requires_scipy)]
    )
    def test_exact_algorithms_agree(self, toy_dataset, algorithm):
        planner = ActivityPlanner(toy_dataset.graph, toy_dataset.calendars)
        result = planner.find_group_and_time(
            initiator="v7",
            group_size=4,
            activity_length=3,
            radius=1,
            acquaintance=1,
            algorithm=algorithm,
        )
        assert result.feasible
        assert result.total_distance == pytest.approx(67.0)

    def test_pcarrange_algorithm(self, toy_dataset):
        planner = ActivityPlanner(toy_dataset.graph, toy_dataset.calendars)
        result = planner.find_group_and_time(
            initiator="v7",
            group_size=4,
            activity_length=3,
            radius=1,
            acquaintance=4,
            algorithm="pcarrange",
        )
        assert result.feasible
        assert result.solver == "PCArrange"

    def test_requires_calendars(self, toy_dataset):
        planner = ActivityPlanner(toy_dataset.graph)
        with pytest.raises(QueryError):
            planner.find_group_and_time(initiator="v7", group_size=4, activity_length=3)

    def test_unknown_algorithm_rejected(self, toy_dataset):
        planner = ActivityPlanner(toy_dataset.graph, toy_dataset.calendars)
        with pytest.raises(QueryError):
            planner.find_group_and_time(
                initiator="v7", group_size=4, activity_length=3, algorithm="magic"
            )


class TestVerify:
    def test_verify_sg_result(self, toy_dataset):
        planner = ActivityPlanner(toy_dataset.graph, toy_dataset.calendars)
        query = SGQuery("v7", 4, 1, 1)
        result = planner.find_group(initiator="v7", group_size=4, radius=1, acquaintance=1)
        assert planner.verify(query, result).ok

    def test_verify_stg_result(self, toy_dataset):
        planner = ActivityPlanner(toy_dataset.graph, toy_dataset.calendars)
        query = STGQuery("v7", 4, 1, 1, 3)
        result = planner.find_group_and_time(
            initiator="v7", group_size=4, activity_length=3, radius=1, acquaintance=1
        )
        assert planner.verify(query, result).ok

    def test_verify_stg_requires_calendars(self, toy_dataset):
        planner = ActivityPlanner(toy_dataset.graph)
        query = STGQuery("v7", 4, 1, 1, 3)
        result = ActivityPlanner(toy_dataset.graph, toy_dataset.calendars).find_group_and_time(
            initiator="v7", group_size=4, activity_length=3, radius=1, acquaintance=1
        )
        with pytest.raises(QueryError):
            planner.verify(query, result)

    def test_verify_detects_bad_result(self, toy_dataset):
        from repro.core import GroupResult

        planner = ActivityPlanner(toy_dataset.graph)
        query = SGQuery("v7", 4, 1, 0)
        fake = GroupResult(True, frozenset({"v7", "v2", "v3", "v8"}), 60.0)
        assert not planner.verify(query, fake).ok
