"""Unit tests for the Integer Programming formulation and its backends."""

import math

import pytest

pytest.importorskip(
    "scipy", reason="the MILP backends need scipy (and numpy)", exc_type=ImportError
)

from tests.conftest import make_random_graph

from repro.core import IPSolver, SGQuery, STGQuery, SGSelect, STGSelect, solve_sgq_ip, solve_stgq_ip
from repro.core.ip.branch_bound import solve_with_branch_bound
from repro.core.ip.model import MILPModel, build_sgq_model, build_stgq_model
from repro.core.ip.scipy_backend import solve_with_scipy
from repro.exceptions import SolverError


class TestMILPModel:
    def test_add_variable_and_constraint(self):
        model = MILPModel()
        x = model.add_variable("x", cost=1.0)
        y = model.add_variable("y", cost=2.0, is_integer=False, upper=math.inf)
        model.add_constraint({x: 1.0, y: 1.0}, lower=1.0, upper=1.0, name="sum")
        assert model.num_vars == 2
        assert model.num_constraints == 1
        assert model.variable_index("y") == y
        assert model.integrality == [1, 0]

    def test_unbounded_constraint_rejected(self):
        model = MILPModel()
        x = model.add_variable("x")
        with pytest.raises(SolverError):
            model.add_constraint({x: 1.0})

    def test_unknown_variable_name(self):
        model = MILPModel()
        with pytest.raises(SolverError):
            model.variable_index("missing")


class TestModelConstruction:
    def test_compact_sgq_model_size(self, toy_dataset):
        model = build_sgq_model(toy_dataset.graph, SGQuery("v7", 4, 1, 1), formulation="compact")
        # One phi variable per feasible vertex (6), no path variables.
        assert model.num_vars == 6
        # Group size + initiator + one acquaintance constraint per vertex.
        assert model.num_constraints == 2 + 6

    def test_full_sgq_model_has_path_variables(self, toy_dataset):
        compact = build_sgq_model(toy_dataset.graph, SGQuery("v7", 4, 1, 1), formulation="compact")
        full = build_sgq_model(toy_dataset.graph, SGQuery("v7", 4, 1, 1), formulation="full")
        assert full.num_vars > compact.num_vars
        assert any(name.startswith("pi[") for name in full.variable_names)
        assert any(name.startswith("delta[") for name in full.variable_names)

    def test_stgq_model_has_start_slot_variables(self, toy_dataset):
        model = build_stgq_model(
            toy_dataset.graph, toy_dataset.calendars, STGQuery("v7", 4, 1, 1, 3)
        )
        assert "tau" in model.metadata
        tau = model.metadata["tau"]
        # Horizon 7, m = 3 -> start slots 1..5.
        assert sorted(tau) == [1, 2, 3, 4, 5]

    def test_invalid_formulation_rejected(self, toy_dataset):
        with pytest.raises(SolverError):
            build_sgq_model(toy_dataset.graph, SGQuery("v7", 4, 1, 1), formulation="???")

    def test_activity_longer_than_horizon_rejected(self, toy_dataset):
        with pytest.raises(SolverError):
            build_stgq_model(
                toy_dataset.graph, toy_dataset.calendars, STGQuery("v7", 4, 1, 1, 20)
            )


class TestBackends:
    def test_scipy_empty_model(self):
        solution = solve_with_scipy(MILPModel())
        assert solution.optimal
        assert solution.objective == 0.0

    def test_branch_bound_empty_model(self):
        solution = solve_with_branch_bound(MILPModel())
        assert solution.optimal

    def test_backends_agree_on_sgq_model(self, toy_dataset):
        model = build_sgq_model(toy_dataset.graph, SGQuery("v7", 4, 1, 1))
        a = solve_with_scipy(model)
        b = solve_with_branch_bound(model)
        assert a.optimal and b.optimal
        assert a.objective == pytest.approx(b.objective)
        assert a.objective == pytest.approx(62.0)

    def test_infeasible_model(self):
        model = MILPModel()
        x = model.add_variable("x")
        model.add_constraint({x: 1.0}, lower=2.0, upper=3.0)  # binary cannot reach 2
        assert solve_with_scipy(model).status == "infeasible"
        assert solve_with_branch_bound(model).status == "infeasible"

    def test_branch_bound_node_cap(self):
        # A model whose LP relaxation is fractional forces at least one branch,
        # so a single-node cap must trip.
        model = MILPModel()
        x = model.add_variable("x", cost=-1.0)
        y = model.add_variable("y", cost=-1.0)
        model.add_constraint({x: 1.0, y: 1.0}, lower=-math.inf, upper=1.5, name="cap")
        with pytest.raises(SolverError):
            solve_with_branch_bound(model, max_nodes=1)

    def test_solution_value_of_defaults_to_zero_when_not_optimal(self):
        from repro.core.ip.scipy_backend import MILPSolution

        sol = MILPSolution(status="infeasible", objective=math.inf, values=[])
        assert sol.value_of(3) == 0.0


class TestIPSolver:
    def test_invalid_backend_rejected(self):
        with pytest.raises(SolverError):
            IPSolver(backend="cplex")

    def test_sgq_matches_sgselect(self, toy_dataset):
        query = SGQuery("v7", 4, 1, 1)
        ip = IPSolver().solve_sgq(toy_dataset.graph, query)
        combinatorial = SGSelect(toy_dataset.graph).solve(query)
        assert ip.matches(combinatorial)
        assert ip.members == combinatorial.members

    def test_full_formulation_matches_compact(self, toy_dataset):
        query = SGQuery("v7", 4, 1, 1)
        compact = IPSolver(formulation="compact").solve_sgq(toy_dataset.graph, query)
        full = IPSolver(formulation="full").solve_sgq(toy_dataset.graph, query)
        assert compact.matches(full)

    def test_full_formulation_multi_hop_distances(self, two_hop_graph):
        """The path constraints must reproduce the two-edge minimum distance:
        with the whole triangle selected, b's contribution is the cheap
        two-edge path (1 + 1) rather than the expensive direct edge (10)."""
        query = SGQuery("q", 3, 2, 2)
        result = IPSolver(formulation="full").solve_sgq(two_hop_graph, query)
        assert result.feasible
        assert result.total_distance == pytest.approx(3.0)
        # With the radius tightened to one edge the direct path is forced.
        tight = IPSolver(formulation="full").solve_sgq(two_hop_graph, SGQuery("q", 3, 1, 2))
        assert tight.total_distance == pytest.approx(11.0)

    def test_stgq_matches_stgselect(self, toy_dataset):
        query = STGQuery("v7", 4, 1, 1, 3)
        ip = IPSolver().solve_stgq(toy_dataset.graph, toy_dataset.calendars, query)
        combinatorial = STGSelect(toy_dataset.graph, toy_dataset.calendars).solve(query)
        assert ip.matches(combinatorial)
        assert ip.period is not None
        assert len(ip.period) == 3

    def test_stgq_infeasible(self, toy_dataset):
        query = STGQuery("v7", 4, 1, 1, 6)
        result = IPSolver().solve_stgq(toy_dataset.graph, toy_dataset.calendars, query)
        assert not result.feasible

    def test_sgq_infeasible(self, star_graph):
        result = IPSolver().solve_sgq(star_graph, SGQuery("q", 3, 1, 0))
        assert not result.feasible

    def test_branch_bound_backend_end_to_end(self, toy_dataset):
        result = IPSolver(backend="branch-bound").solve_sgq(
            toy_dataset.graph, SGQuery("v7", 4, 1, 1)
        )
        assert result.feasible
        assert result.total_distance == pytest.approx(62.0)

    def test_convenience_wrappers(self, toy_dataset):
        sg = solve_sgq_ip(toy_dataset.graph, "v7", 4, 1, 1)
        stg = solve_stgq_ip(toy_dataset.graph, toy_dataset.calendars, "v7", 4, 1, 1, 3)
        assert sg.feasible and stg.feasible

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_sgselect_on_random_graphs(self, seed):
        graph = make_random_graph(seed, n=9, edge_prob=0.45)
        query = SGQuery(0, 4, 2, 1)
        ip = IPSolver().solve_sgq(graph, query)
        combinatorial = SGSelect(graph).solve(query)
        assert ip.matches(combinatorial)
