"""Equivalence of every selectable kernel against the reference kernel.

All kernels (``reference`` — the executable specification, ``compiled`` —
int bitmasks, ``numpy`` — packed uint64 vectorization, when numpy is
available) are required to visit the identical search tree, so the
assertions here are strict: same feasibility, same members, same total
distance (exact float equality — the distance sums accumulate in the same
order), same temporal fields for STGQ, and the same search statistics.
Randomised instances come from hypothesis; the seeded fixtures cover the
ablation toggles and the ``allowed_candidates`` restriction.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SearchParameters, SGQuery, SGSelect, STGQuery, STGSelect
from repro.graph import SocialGraph, compile_feasible_graph, extract_feasible_graph
from repro.graph.compiled import iter_bits, lowest_bit_index
from repro.graph.packed import numpy_kernel_available
from repro.temporal import CalendarStore, Schedule

from ..conftest import make_random_calendars, make_random_graph

#: Every kernel exercised by the equivalence assertions; ``numpy`` joins
#: when the interpreter has numpy >= 2.0 (without it the fallback path is
#: covered by tests/core/test_query.py instead).
KERNELS = ("reference", "compiled") + (("numpy",) if numpy_kernel_available() else ())


def _params(kernel, **kwargs):
    return SearchParameters(kernel=kernel, **kwargs)


def _strip(stats):
    d = stats.as_dict()
    d.pop("elapsed_seconds")
    return d


def assert_sg_equivalent(graph, query, allowed_candidates=None, **param_kwargs):
    results = {
        kernel: SGSelect(graph, _params(kernel, **param_kwargs)).solve(
            query, allowed_candidates=allowed_candidates
        )
        for kernel in KERNELS
    }
    ref = results["reference"]
    for kernel, result in results.items():
        assert result.feasible == ref.feasible, kernel
        assert result.members == ref.members, kernel
        assert result.total_distance == ref.total_distance, kernel
        assert _strip(result.stats) == _strip(ref.stats), kernel
    return ref, results["compiled"]


def assert_stg_equivalent(graph, calendars, query, **param_kwargs):
    results = {
        kernel: STGSelect(graph, calendars, _params(kernel, **param_kwargs)).solve(query)
        for kernel in KERNELS
    }
    ref = results["reference"]
    for kernel, result in results.items():
        assert result.feasible == ref.feasible, kernel
        assert result.members == ref.members, kernel
        assert result.total_distance == ref.total_distance, kernel
        assert result.period == ref.period, kernel
        assert result.pivot == ref.pivot, kernel
        assert result.shared_slots == ref.shared_slots, kernel
        assert _strip(result.stats) == _strip(ref.stats), kernel
    return ref, results["compiled"]


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def social_graphs(draw, min_vertices=4, max_vertices=10):
    n = draw(st.integers(min_vertices, max_vertices))
    graph = SocialGraph(vertices=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                graph.add_edge(u, v, draw(st.integers(1, 15)))
    return graph


@st.composite
def sg_instances(draw):
    graph = draw(social_graphs())
    query = SGQuery(
        initiator=0,
        group_size=draw(st.integers(1, 6)),
        radius=draw(st.integers(1, 3)),
        acquaintance=draw(st.integers(0, 3)),
    )
    return graph, query


@st.composite
def stg_instances(draw):
    graph = draw(social_graphs(max_vertices=8))
    horizon = draw(st.integers(4, 10))
    store = CalendarStore(horizon)
    for person in graph:
        slots = draw(st.lists(st.integers(1, horizon), unique=True, max_size=horizon))
        store.set(person, Schedule(horizon, slots))
    query = STGQuery(
        initiator=0,
        group_size=draw(st.integers(1, 5)),
        radius=draw(st.integers(1, 3)),
        acquaintance=draw(st.integers(0, 2)),
        activity_length=draw(st.integers(1, min(3, horizon))),
    )
    return graph, store, query


# ----------------------------------------------------------------------
# randomized equivalence
# ----------------------------------------------------------------------
class TestRandomizedEquivalence:
    @settings(max_examples=120, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(sg_instances())
    def test_sgq_kernels_identical(self, instance):
        graph, query = instance
        assert_sg_equivalent(graph, query)

    @settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(stg_instances())
    def test_stgq_kernels_identical(self, instance):
        graph, store, query = instance
        assert_stg_equivalent(graph, store, query)


class TestSeededEquivalence:
    """Denser seeded coverage of parameter corners (deterministic)."""

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("p,k,s", [(3, 0, 1), (5, 2, 2), (7, 1, 2), (4, 3, 3)])
    def test_sgq_grid(self, seed, p, k, s):
        graph = make_random_graph(seed, n=13, edge_prob=0.35)
        query = SGQuery(initiator=0, group_size=p, radius=s, acquaintance=k)
        assert_sg_equivalent(graph, query)

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("p,k,m", [(3, 0, 2), (4, 1, 3), (5, 2, 2)])
    def test_stgq_grid(self, seed, p, k, m):
        graph = make_random_graph(seed, n=11, edge_prob=0.4)
        calendars = make_random_calendars(seed + 500, list(graph), horizon=12, availability=0.6)
        query = STGQuery(initiator=0, group_size=p, radius=2, acquaintance=k, activity_length=m)
        assert_stg_equivalent(graph, calendars, query)

    @pytest.mark.parametrize(
        "toggle",
        [
            {"use_access_ordering": False},
            {"use_distance_pruning": False},
            {"use_acquaintance_pruning": False},
            {"use_availability_pruning": False},
            {"use_pivot_slots": False},
            {"theta": 0},
            {"theta": 5},
            {
                "use_access_ordering": False,
                "use_distance_pruning": False,
                "use_acquaintance_pruning": False,
                "use_availability_pruning": False,
                "use_pivot_slots": False,
            },
        ],
    )
    def test_ablation_toggles(self, toggle):
        for seed in range(4):
            graph = make_random_graph(seed, n=10, edge_prob=0.4)
            calendars = make_random_calendars(seed + 77, list(graph), horizon=10, availability=0.55)
            sg_kwargs = {key: val for key, val in toggle.items()
                         if key not in ("use_availability_pruning", "use_pivot_slots")}
            assert_sg_equivalent(
                graph,
                SGQuery(initiator=0, group_size=5, radius=2, acquaintance=1),
                **sg_kwargs,
            )
            assert_stg_equivalent(
                graph,
                calendars,
                STGQuery(initiator=0, group_size=4, radius=2, acquaintance=1, activity_length=2),
                **toggle,
            )

    @pytest.mark.parametrize("seed", range(6))
    def test_allowed_candidates_restriction(self, seed):
        graph = make_random_graph(seed, n=12, edge_prob=0.45)
        allowed = {v for v in graph if isinstance(v, int) and v % 2 == 0}
        query = SGQuery(initiator=0, group_size=4, radius=2, acquaintance=2)
        assert_sg_equivalent(graph, query, allowed_candidates=allowed)


# ----------------------------------------------------------------------
# cached-form reuse (the QueryService path)
# ----------------------------------------------------------------------
@pytest.mark.skipif(not numpy_kernel_available(), reason="needs numpy >= 2.0")
class TestSharedPrecompiledForms:
    """Solvers must give identical answers when handed cached forms.

    The service caches (feasible, compiled, packed) per ego network and
    passes all three into every solve of a batch; the answers (and stats)
    must match a cold solve exactly, and a restricted candidate pool must
    discard the cached full-pool forms rather than mis-index into them.
    """

    def _forms(self, graph, initiator, radius):
        from repro.graph.packed import pack_adjacency

        feasible = extract_feasible_graph(graph, initiator, radius)
        compiled = compile_feasible_graph(feasible)
        return feasible, compiled, pack_adjacency(compiled)

    @pytest.mark.parametrize("seed", range(4))
    def test_sg_cached_forms_match_cold_solve(self, seed):
        graph = make_random_graph(seed, n=12, edge_prob=0.4)
        query = SGQuery(initiator=0, group_size=4, radius=2, acquaintance=1)
        solver = SGSelect(graph, _params("numpy"))
        feasible, compiled, packed = self._forms(graph, 0, 2)
        cold = solver.solve(query)
        warm = solver.solve(
            query, feasible_graph=feasible, compiled_graph=compiled, packed_graph=packed
        )
        assert warm.members == cold.members
        assert warm.total_distance == cold.total_distance
        assert _strip(warm.stats) == _strip(cold.stats)

    @pytest.mark.parametrize("seed", range(4))
    def test_stg_cached_forms_match_cold_solve(self, seed):
        graph = make_random_graph(seed, n=11, edge_prob=0.4)
        calendars = make_random_calendars(seed + 9, list(graph), horizon=10, availability=0.6)
        query = STGQuery(initiator=0, group_size=4, radius=2, acquaintance=1, activity_length=2)
        solver = STGSelect(graph, calendars, _params("numpy"))
        feasible, compiled, packed = self._forms(graph, 0, 2)
        cold = solver.solve(query)
        warm = solver.solve(
            query, feasible_graph=feasible, compiled_graph=compiled, packed_graph=packed
        )
        assert warm.members == cold.members
        assert warm.total_distance == cold.total_distance
        assert warm.period == cold.period
        assert _strip(warm.stats) == _strip(cold.stats)

    def test_restricted_pool_discards_cached_forms(self):
        graph = make_random_graph(3, n=12, edge_prob=0.45)
        allowed = {v for v in graph if isinstance(v, int) and v % 2 == 0}
        query = SGQuery(initiator=0, group_size=4, radius=2, acquaintance=2)
        solver = SGSelect(graph, _params("numpy"))
        feasible, compiled, packed = self._forms(graph, 0, 2)
        restricted = solver.solve(
            query,
            allowed_candidates=allowed,
            feasible_graph=feasible,
            compiled_graph=compiled,
            packed_graph=packed,
        )
        baseline = solver.solve(query, allowed_candidates=allowed)
        assert restricted.members == baseline.members
        assert restricted.total_distance == baseline.total_distance
        assert _strip(restricted.stats) == _strip(baseline.stats)


# ----------------------------------------------------------------------
# compiled-graph structure
# ----------------------------------------------------------------------
class TestCompiledGraphStructure:
    def test_access_order_and_distances(self, toy_dataset):
        feasible = extract_feasible_graph(toy_dataset.graph, "v7", 2)
        compiled = compile_feasible_graph(feasible)
        assert compiled.vertices[0] == "v7"
        assert list(compiled.vertices[1:]) == feasible.candidates
        assert compiled.dist[0] == 0.0
        # Distances ascend over candidate ids (the lowest-set-bit selection
        # rule in the kernels relies on this).
        assert list(compiled.dist[1:]) == sorted(compiled.dist[1:])

    def test_adjacency_matches_graph(self, toy_dataset):
        feasible = extract_feasible_graph(toy_dataset.graph, "v7", 2)
        compiled = compile_feasible_graph(feasible)
        for i, v in enumerate(compiled.vertices):
            neighbours = {compiled.vertices[j] for j in iter_bits(compiled.adj[i])}
            expected = set(feasible.graph.neighbors(v)) & set(compiled.vertices)
            assert neighbours == expected
            # Undirected: the bit is symmetric.
            for j in iter_bits(compiled.adj[i]):
                assert compiled.adj[j] >> i & 1

    def test_mask_round_trip(self, toy_dataset):
        feasible = extract_feasible_graph(toy_dataset.graph, "v7", 1)
        compiled = compile_feasible_graph(feasible)
        subset = list(compiled.vertices)[:: 2]
        mask = compiled.mask_of(subset)
        assert compiled.members_of(mask) == subset

    def test_bit_helpers(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b101001)) == [0, 3, 5]
        assert lowest_bit_index(0b1000) == 3
        assert lowest_bit_index(1 << 200) == 200
