"""Unit tests for solution verification."""

import math

import pytest

from repro.core import (
    SGQuery,
    STGQuery,
    check_sg_solution,
    check_stg_solution,
    group_total_distance,
    observed_acquaintance,
)
from repro.temporal import SlotRange


class TestGroupTotalDistance:
    def test_excludes_initiator(self, toy_dataset):
        total = group_total_distance(toy_dataset.graph, "v7", ["v7", "v2", "v3"], radius=1)
        assert total == pytest.approx(35.0)

    def test_unreachable_member_is_infinite(self, toy_dataset):
        total = group_total_distance(toy_dataset.graph, "v2", ["v2", "v8"], radius=1)
        assert total == math.inf

    def test_multi_hop_distance(self, two_hop_graph):
        assert group_total_distance(two_hop_graph, "q", ["q", "b"], radius=2) == 2.0
        assert group_total_distance(two_hop_graph, "q", ["q", "b"], radius=1) == 10.0


class TestObservedAcquaintance:
    def test_clique_is_zero(self, toy_dataset):
        assert observed_acquaintance(toy_dataset.graph, ["v2", "v4", "v7"]) == 0

    def test_star_group(self, star_graph):
        assert observed_acquaintance(star_graph, ["q", "a", "b", "c"]) == 2

    def test_empty_group(self, star_graph):
        assert observed_acquaintance(star_graph, []) == 0


class TestCheckSGSolution:
    def query(self):
        return SGQuery(initiator="v7", group_size=4, radius=1, acquaintance=1)

    def test_valid_solution(self, toy_dataset):
        report = check_sg_solution(toy_dataset.graph, self.query(), ["v7", "v2", "v3", "v4"])
        assert report.ok
        assert bool(report) is True
        assert report.total_distance == pytest.approx(62.0)
        assert report.violations == []

    def test_wrong_size(self, toy_dataset):
        report = check_sg_solution(toy_dataset.graph, self.query(), ["v7", "v2"])
        assert not report.ok
        assert not report.size_ok
        assert any("members" in v for v in report.violations)

    def test_missing_initiator(self, toy_dataset):
        report = check_sg_solution(toy_dataset.graph, self.query(), ["v2", "v3", "v4", "v6"])
        assert not report.initiator_included

    def test_radius_violation(self, toy_dataset):
        query = SGQuery(initiator="v2", group_size=4, radius=1, acquaintance=3)
        # v8 is two hops from v2, so it violates the radius constraint.
        report = check_sg_solution(toy_dataset.graph, query, ["v2", "v7", "v4", "v8"])
        assert not report.radius_ok

    def test_acquaintance_violation(self, toy_dataset):
        query = SGQuery(initiator="v7", group_size=4, radius=1, acquaintance=0)
        report = check_sg_solution(toy_dataset.graph, query, ["v7", "v2", "v3", "v4"])
        assert not report.acquaintance_ok
        assert report.size_ok


class TestCheckSTGSolution:
    def query(self, m=3):
        return STGQuery(initiator="v7", group_size=4, radius=1, acquaintance=1, activity_length=m)

    def test_valid_solution(self, toy_dataset):
        report = check_stg_solution(
            toy_dataset.graph,
            toy_dataset.calendars,
            self.query(),
            ["v7", "v2", "v4", "v6"],
            SlotRange(2, 4),
        )
        assert report.ok
        assert report.availability_ok

    def test_missing_period(self, toy_dataset):
        report = check_stg_solution(
            toy_dataset.graph, toy_dataset.calendars, self.query(), ["v7", "v2", "v4", "v6"], None
        )
        assert not report.ok
        assert not report.availability_ok

    def test_wrong_period_length(self, toy_dataset):
        report = check_stg_solution(
            toy_dataset.graph,
            toy_dataset.calendars,
            self.query(),
            ["v7", "v2", "v4", "v6"],
            SlotRange(2, 3),
        )
        assert not report.availability_ok

    def test_member_busy_in_period(self, toy_dataset):
        # v3 is busy in slot 4, so the period [2, 4] does not work for it.
        report = check_stg_solution(
            toy_dataset.graph,
            toy_dataset.calendars,
            self.query(),
            ["v7", "v2", "v3", "v4"],
            SlotRange(2, 4),
        )
        assert not report.availability_ok
        assert any("available" in v for v in report.violations)

    def test_period_past_horizon(self, toy_dataset):
        report = check_stg_solution(
            toy_dataset.graph,
            toy_dataset.calendars,
            self.query(),
            ["v7", "v2", "v4", "v6"],
            SlotRange(6, 8),
        )
        assert not report.availability_ok

    def test_social_violations_propagate(self, toy_dataset):
        # {v7, v2, v3, v4} violates k = 0 (v2 and v3 are strangers) while all
        # four are free in slot 2, so only the acquaintance check must fail.
        query = STGQuery(initiator="v7", group_size=4, radius=1, acquaintance=0, activity_length=1)
        report = check_stg_solution(
            toy_dataset.graph,
            toy_dataset.calendars,
            query,
            ["v7", "v2", "v3", "v4"],
            SlotRange(2, 2),
        )
        assert not report.ok
        assert not report.acquaintance_ok
        assert report.availability_ok
