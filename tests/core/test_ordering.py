"""Unit tests for the access-ordering measures U(VS), A(VS), X(VS) and the
selection conditions (paper §3.2.2 and §4.2, Definitions 2, 3 and 5)."""


from repro.core import (
    exterior_expansibility,
    exterior_expansibility_condition,
    interior_unfamiliarity,
    interior_unfamiliarity_condition,
    temporal_extensibility,
    temporal_extensibility_condition,
)
from repro.temporal import SlotRange


class TestInteriorUnfamiliarity:
    def test_clique_is_zero(self, toy_dataset):
        assert interior_unfamiliarity(toy_dataset.graph, ["v2", "v4", "v6", "v7"]) == 0

    def test_single_vertex(self, toy_dataset):
        assert interior_unfamiliarity(toy_dataset.graph, ["v7"]) == 0

    def test_paper_example_values(self, toy_dataset):
        """Example 2: U({v7, v2}) = 0, U({v2, v6, v7, v3}) = 2."""
        graph = toy_dataset.graph
        assert interior_unfamiliarity(graph, ["v7", "v2"]) == 0
        assert interior_unfamiliarity(graph, ["v2", "v7", "v3"]) == 1
        assert interior_unfamiliarity(graph, ["v2", "v6", "v7", "v3"]) == 2

    def test_star_group(self, star_graph):
        assert interior_unfamiliarity(star_graph, ["q", "a", "b", "c"]) == 2


class TestExteriorExpansibility:
    def test_paper_example_value(self, toy_dataset):
        """Example 2, footnote 4: A({v7, v2}) = 3 with VA = {v3, v4, v6, v8}."""
        graph = toy_dataset.graph
        value = exterior_expansibility(graph, ["v7", "v2"], ["v3", "v4", "v6", "v8"], acquaintance=1)
        assert value == 3

    def test_second_paper_value(self, toy_dataset):
        """Example 2: A({v2, v3, v7}) = 1 with VA = {v4, v6, v8}."""
        graph = toy_dataset.graph
        value = exterior_expansibility(graph, ["v2", "v3", "v7"], ["v4", "v6", "v8"], acquaintance=1)
        assert value == 1

    def test_no_candidates_left(self, toy_dataset):
        value = exterior_expansibility(toy_dataset.graph, ["v7", "v2"], [], acquaintance=1)
        assert value == 1  # only the residual quota remains

    def test_empty_members(self, toy_dataset):
        assert exterior_expansibility(toy_dataset.graph, [], ["v2"], acquaintance=1) == 0


class TestTemporalExtensibility:
    def test_none_means_maximally_infeasible(self):
        assert temporal_extensibility(None, 3) == -3

    def test_slack(self):
        assert temporal_extensibility(SlotRange(1, 5), 3) == 2
        assert temporal_extensibility(SlotRange(2, 4), 3) == 0
        assert temporal_extensibility(SlotRange(2, 3), 3) == -1


class TestConditions:
    def test_interior_condition_theta_zero_is_acquaintance_constraint(self):
        assert interior_unfamiliarity_condition(1, new_size=4, group_size=4, acquaintance=1, theta=0)
        assert not interior_unfamiliarity_condition(2, new_size=4, group_size=4, acquaintance=1, theta=0)

    def test_interior_condition_stricter_for_larger_theta(self):
        # Example 2: U = 1 > 1 * (3/4)^2, so the condition fails at theta = 2.
        assert not interior_unfamiliarity_condition(1, new_size=3, group_size=4, acquaintance=1, theta=2)
        assert interior_unfamiliarity_condition(0, new_size=3, group_size=4, acquaintance=1, theta=2)

    def test_interior_condition_full_group(self):
        assert interior_unfamiliarity_condition(1, new_size=4, group_size=4, acquaintance=1, theta=2)

    def test_exterior_condition(self):
        assert exterior_expansibility_condition(3, new_size=2, group_size=4)
        assert exterior_expansibility_condition(2, new_size=2, group_size=4)
        assert not exterior_expansibility_condition(1, new_size=2, group_size=4)
        # A completed group always satisfies the condition.
        assert exterior_expansibility_condition(0, new_size=4, group_size=4)

    def test_temporal_condition_paper_example(self):
        """Example 3: X({v7, v2}) = 2 >= (3-1) * (2/4)^2 = 0.5 holds."""
        assert temporal_extensibility_condition(
            2, new_size=2, group_size=4, activity_length=3, phi=2, phi_threshold=6
        )

    def test_temporal_condition_negative_extensibility(self):
        assert not temporal_extensibility_condition(
            -1, new_size=4, group_size=4, activity_length=3, phi=2, phi_threshold=6
        )

    def test_temporal_condition_threshold_degenerates_to_feasibility(self):
        assert temporal_extensibility_condition(
            0, new_size=2, group_size=4, activity_length=5, phi=6, phi_threshold=6
        )
        assert not temporal_extensibility_condition(
            -1, new_size=2, group_size=4, activity_length=5, phi=6, phi_threshold=6
        )

    def test_temporal_condition_relaxes_with_phi(self):
        # ext = 1: fails at phi = 1 (RHS = 2 * (2/4) = 1? -> holds with equality),
        # use a stricter example: ext = 0 with m = 5.
        assert not temporal_extensibility_condition(
            0, new_size=2, group_size=4, activity_length=5, phi=1, phi_threshold=6
        )
        assert temporal_extensibility_condition(
            0, new_size=2, group_size=4, activity_length=5, phi=5, phi_threshold=6
        ) == (0 >= 4 * (2 / 4) ** 5)
