"""Unit tests for the query dataclasses and search parameters."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import VALID_KERNELS, SGQuery, STGQuery, SearchParameters
from repro.exceptions import QueryError


class TestSGQuery:
    def test_valid_query(self):
        q = SGQuery(initiator="q", group_size=4, radius=2, acquaintance=1)
        assert q.attendees_to_select == 3
        assert "SGQ(p=4, s=2, k=1)" in q.describe()

    def test_frozen(self):
        q = SGQuery(initiator="q", group_size=4, radius=2, acquaintance=1)
        with pytest.raises(AttributeError):
            q.group_size = 5

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"group_size": 0, "radius": 1, "acquaintance": 0},
            {"group_size": 3, "radius": 0, "acquaintance": 0},
            {"group_size": 3, "radius": 1, "acquaintance": -1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(QueryError):
            SGQuery(initiator="q", **kwargs)

    def test_single_person_group_allowed(self):
        q = SGQuery(initiator="q", group_size=1, radius=1, acquaintance=0)
        assert q.attendees_to_select == 0


class TestSTGQuery:
    def test_valid_query(self):
        q = STGQuery(initiator="q", group_size=4, radius=2, acquaintance=1, activity_length=3)
        assert q.attendees_to_select == 3
        assert "m=3" in q.describe()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"group_size": 0, "radius": 1, "acquaintance": 0, "activity_length": 1},
            {"group_size": 3, "radius": 0, "acquaintance": 0, "activity_length": 1},
            {"group_size": 3, "radius": 1, "acquaintance": -1, "activity_length": 1},
            {"group_size": 3, "radius": 1, "acquaintance": 0, "activity_length": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(QueryError):
            STGQuery(initiator="q", **kwargs)

    def test_social_part_drops_temporal(self):
        q = STGQuery(initiator="q", group_size=4, radius=2, acquaintance=1, activity_length=3)
        sg = q.social_part()
        assert isinstance(sg, SGQuery)
        assert (sg.group_size, sg.radius, sg.acquaintance) == (4, 2, 1)


class TestSearchParameters:
    def test_defaults(self):
        params = SearchParameters()
        assert params.theta == 2
        assert params.phi == 2
        assert params.use_distance_pruning

    def test_invalid_theta(self):
        with pytest.raises(QueryError):
            SearchParameters(theta=-1)

    def test_invalid_phi(self):
        with pytest.raises(QueryError):
            SearchParameters(phi=0)

    def test_phi_threshold_must_dominate_phi(self):
        with pytest.raises(QueryError):
            SearchParameters(phi=4, phi_threshold=3)

    def test_strategy_toggles(self):
        params = SearchParameters(use_distance_pruning=False, use_pivot_slots=False)
        assert not params.use_distance_pruning
        assert not params.use_pivot_slots
        assert params.use_acquaintance_pruning


class TestKernelSelection:
    @pytest.mark.parametrize("kernel", VALID_KERNELS)
    def test_every_listed_kernel_constructs(self, kernel):
        # The registry is authoritative: a kernel name listed there must be
        # accepted (possibly degrading, never raising).
        params = SearchParameters(kernel=kernel)
        assert params.kernel in VALID_KERNELS

    @given(st.text(max_size=12).filter(lambda s: s not in VALID_KERNELS))
    def test_unknown_kernel_message_derives_from_registry(self, kernel):
        with pytest.raises(QueryError) as excinfo:
            SearchParameters(kernel=kernel)
        # The message enumerates VALID_KERNELS itself, so a new kernel can
        # never drift out of it.
        message = str(excinfo.value)
        for name in VALID_KERNELS:
            assert repr(name) in message

    def test_numpy_kernel_selected_when_available(self):
        pytest.importorskip("numpy")
        from repro.graph.packed import numpy_kernel_available

        if not numpy_kernel_available():
            pytest.skip("numpy too old for the vectorized kernel")
        assert SearchParameters(kernel="numpy").kernel == "numpy"

    def test_numpy_kernel_degrades_to_compiled_without_numpy(self, monkeypatch):
        # Simulate an interpreter without (a new-enough) numpy: the request
        # must degrade to the compiled kernel with a warning, not error.
        monkeypatch.setattr("repro.core.query.numpy_kernel_available", lambda: False)
        with pytest.warns(RuntimeWarning, match="falling back to the compiled kernel"):
            params = SearchParameters(kernel="numpy")
        assert params.kernel == "compiled"

    def test_other_kernels_never_warn_about_numpy(self, monkeypatch):
        import warnings

        monkeypatch.setattr("repro.core.query.numpy_kernel_available", lambda: False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert SearchParameters(kernel="compiled").kernel == "compiled"
            assert SearchParameters(kernel="reference").kernel == "reference"
