"""Tests for the benchmark regression gate (``benchmarks/check_baseline.py``)."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_baseline.py"
_spec = importlib.util.spec_from_file_location("check_baseline", _SCRIPT)
check_baseline = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("check_baseline", check_baseline)
_spec.loader.exec_module(check_baseline)

BASELINE = {
    "compiled": {"qps": 30.0, "wall_s": 7.0, "queries": 200},
    "numpy": {"qps": 40.0},
    "numpy_vs_compiled": 1.33,
    "meta": {"cpu_count": 8},
}


def write(tmp_path, name, tree):
    path = tmp_path / name
    path.write_text(json.dumps(tree))
    return str(path)


class TestLeafExtraction:
    def test_only_throughput_keys_are_gated(self):
        leaves = dict(check_baseline.iter_throughput_leaves(BASELINE))
        assert leaves == {
            "compiled.qps": 30.0,
            "numpy.qps": 40.0,
            "numpy_vs_compiled": 1.33,
        }

    def test_nested_paths_are_dotted(self):
        tree = {"extraction": {"csr": {"per_sec": 23.7}, "dict": {"per_sec": 32.5}}}
        leaves = dict(check_baseline.iter_throughput_leaves(tree))
        assert leaves == {"extraction.csr.per_sec": 23.7, "extraction.dict.per_sec": 32.5}

    def test_non_dict_input_yields_nothing(self):
        assert list(check_baseline.iter_throughput_leaves([1, 2])) == []


class TestGate:
    def test_identical_run_passes(self, tmp_path):
        base = write(tmp_path, "base.json", BASELINE)
        assert check_baseline.main([base, base]) == 0

    def test_small_drop_within_tolerance_passes(self, tmp_path, capsys):
        fresh = {"compiled": {"qps": 27.0}, "numpy": {"qps": 38.0}, "numpy_vs_compiled": 1.30}
        code = check_baseline.main(
            [write(tmp_path, "b.json", BASELINE), write(tmp_path, "f.json", fresh)]
        )
        assert code == 0
        assert "ok: 3 throughput metrics" in capsys.readouterr().out

    def test_large_drop_fails(self, tmp_path, capsys):
        fresh = {"compiled": {"qps": 20.0}, "numpy": {"qps": 40.0}, "numpy_vs_compiled": 1.33}
        code = check_baseline.main(
            [write(tmp_path, "b.json", BASELINE), write(tmp_path, "f.json", fresh)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out and "compiled.qps" in out

    def test_missing_metric_fails(self, tmp_path, capsys):
        fresh = {"compiled": {"qps": 30.0}, "numpy_vs_compiled": 1.33}
        code = check_baseline.main(
            [write(tmp_path, "b.json", BASELINE), write(tmp_path, "f.json", fresh)]
        )
        assert code == 1
        assert "missing" in capsys.readouterr().out

    def test_throughput_rise_passes(self, tmp_path):
        fresh = {"compiled": {"qps": 99.0}, "numpy": {"qps": 99.0}, "numpy_vs_compiled": 9.9}
        assert check_baseline.main(
            [write(tmp_path, "b.json", BASELINE), write(tmp_path, "f.json", fresh)]
        ) == 0

    def test_no_throughput_metrics_fails(self, tmp_path):
        empty = {"wall_s": 3.0}
        base = write(tmp_path, "b.json", empty)
        assert check_baseline.main([base, base]) == 1

    def test_unreadable_file_fails(self, tmp_path, capsys):
        base = write(tmp_path, "b.json", BASELINE)
        assert check_baseline.main([base, str(tmp_path / "missing.json")]) == 1
        assert "cannot read" in capsys.readouterr().out

    def test_bad_max_drop_is_usage_error(self, tmp_path):
        base = write(tmp_path, "b.json", BASELINE)
        with pytest.raises(SystemExit) as excinfo:
            check_baseline.main([base, base, "--max-drop", "1.5"])
        assert excinfo.value.code == 2

    def test_committed_baselines_are_gateable(self):
        """The repo's committed artifacts must contain throughput leaves."""
        repo = _SCRIPT.parent.parent
        for name in ("BENCH_kernels.json", "BENCH_substrates.json"):
            tree = json.loads((repo / name).read_text())
            assert list(check_baseline.iter_throughput_leaves(tree)), name
