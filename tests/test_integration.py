"""Integration tests: full pipeline on generated datasets.

These exercise the same path the examples and benchmarks use — generate a
dataset, plan activities through the public API, and verify every result
independently — at a size small enough for the regular test run.
"""


import pytest

from repro import ActivityPlanner, SGQuery, STGQuery, SearchParameters
from repro.core import (
    BaselineSGQ,
    BaselineSTGQ,
    IPSolver,
    PCArrange,
    SGSelect,
    STGArrange,
    STGSelect,
)
from repro.datasets import generate_real_dataset
from repro.experiments import pick_initiator

from tests.conftest import HAVE_SCIPY


@pytest.fixture(scope="module")
def dataset():
    return generate_real_dataset(n_people=70, schedule_days=1, seed=11)


@pytest.fixture(scope="module")
def initiator(dataset):
    return pick_initiator(dataset, radius=1, min_candidates=8, max_candidates=22)


class TestGeneratedDatasetPipeline:
    def test_sgq_solvers_agree(self, dataset, initiator):
        query = SGQuery(initiator, 5, 1, 2)
        fast = SGSelect(dataset.graph).solve(query)
        slow = BaselineSGQ(dataset.graph).solve(query)
        assert fast.matches(slow)
        if HAVE_SCIPY:  # the MILP cross-check needs scipy/numpy
            ip = IPSolver().solve_sgq(dataset.graph, query)
            assert fast.matches(ip)

    def test_stgq_solvers_agree(self, dataset, initiator):
        query = STGQuery(initiator, 4, 1, 2, 3)
        fast = STGSelect(dataset.graph, dataset.calendars).solve(query)
        slow = BaselineSTGQ(dataset.graph, dataset.calendars).solve(query)
        assert fast.matches(slow)

    def test_planner_verifies_its_own_answers(self, dataset, initiator):
        planner = ActivityPlanner(dataset.graph, dataset.calendars)
        query = STGQuery(initiator, 4, 2, 2, 2)
        result = planner.find_group_and_time(
            initiator=initiator, group_size=4, activity_length=2, radius=2, acquaintance=2
        )
        if result.feasible:
            assert planner.verify(query, result).ok

    def test_tighter_constraints_cost_more(self, dataset, initiator):
        planner = ActivityPlanner(dataset.graph, dataset.calendars)
        distances = []
        for k in (3, 2, 1):
            result = planner.find_group(
                initiator=initiator, group_size=5, radius=1, acquaintance=k
            )
            distances.append(result.total_distance)
        assert distances[0] <= distances[1] <= distances[2]

    def test_longer_activities_cost_at_least_as_much(self, dataset, initiator):
        planner = ActivityPlanner(dataset.graph, dataset.calendars)
        previous = 0.0
        for m in (1, 2, 4):
            result = planner.find_group_and_time(
                initiator=initiator, group_size=4, activity_length=m, radius=1, acquaintance=3
            )
            if not result.feasible:
                break
            assert result.total_distance >= previous - 1e-9
            previous = result.total_distance

    def test_quality_comparison_runs_end_to_end(self, dataset, initiator):
        outcome = STGArrange(dataset.graph, dataset.calendars).compare(
            initiator=initiator, group_size=4, radius=1, activity_length=3
        )
        if outcome.pcarrange.feasible and outcome.stgarrange.feasible:
            assert outcome.stgarrange.total_distance <= outcome.pcarrange.total_distance
            assert outcome.stgarrange_k <= outcome.pcarrange_k

    def test_search_parameters_do_not_change_answers(self, dataset, initiator):
        query = SGQuery(initiator, 5, 1, 2)
        reference = SGSelect(dataset.graph).solve(query)
        for theta in (0, 1, 4):
            variant = SGSelect(dataset.graph, SearchParameters(theta=theta)).solve(query)
            assert reference.matches(variant)

    def test_pcarrange_distance_never_beats_optimum_at_observed_k(self, dataset, initiator):
        pc = PCArrange(dataset.graph, dataset.calendars)
        pc_result = pc.solve(STGQuery(initiator, 4, 1, 4, 2))
        if not pc_result.feasible:
            pytest.skip("manual coordination found no group on this workload")
        k_h = pc.observed_k(pc_result)
        optimal = STGSelect(dataset.graph, dataset.calendars).solve(
            STGQuery(initiator, 4, 1, k_h, 2)
        )
        assert optimal.feasible
        assert optimal.total_distance <= pc_result.total_distance + 1e-9

    def test_stats_reflect_pruning_work(self, dataset, initiator):
        query = SGQuery(initiator, 5, 1, 2)
        result = SGSelect(dataset.graph).solve(query)
        baseline = BaselineSGQ(dataset.graph).solve(query)
        # The branch-and-bound search must consider far fewer states than the
        # exhaustive enumeration considers groups.
        assert result.stats.nodes_expanded < baseline.stats.nodes_expanded
