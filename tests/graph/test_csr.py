"""Unit tests for the CSR graph substrate and the ``.stgq`` file format."""

import pickle

import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.graph import SocialGraph, csr_available
from repro.graph.csr import STGQ_MAGIC, CSRGraph, inspect_stgq, load_stgq, pack_graph

from ..conftest import make_random_graph

pytestmark = pytest.mark.skipif(not csr_available(), reason="CSR substrate needs numpy")


def _csr(graph):
    return CSRGraph.from_social_graph(graph)


class TestConstruction:
    def test_from_social_graph_matches(self):
        graph = make_random_graph(3, n=12, edge_prob=0.4)
        csr = _csr(graph)
        assert csr.vertex_count == graph.vertex_count
        assert csr.edge_count == graph.edge_count
        assert csr == graph
        assert graph == csr.to_social_graph()

    def test_from_edge_arrays_identity_ids(self):
        import numpy as np

        csr = CSRGraph.from_edge_arrays(
            4, np.array([0, 1, 2]), np.array([1, 2, 3]), np.array([1.0, 2.0, 3.0])
        )
        assert csr.identity_ids
        assert csr.vertices() == [0, 1, 2, 3]
        assert csr.distance(1, 2) == 2.0

    def test_from_edge_arrays_rejects_self_loops(self):
        import numpy as np

        with pytest.raises(GraphError):
            CSRGraph.from_edge_arrays(3, np.array([1]), np.array([1]), np.array([1.0]))

    def test_from_edge_arrays_rejects_duplicates(self):
        import numpy as np

        with pytest.raises(GraphError):
            CSRGraph.from_edge_arrays(
                3, np.array([0, 1]), np.array([1, 0]), np.array([1.0, 1.0])
            )

    def test_from_edge_arrays_rejects_bad_weights(self):
        import numpy as np

        for bad in (0.0, -1.0, float("inf"), float("nan")):
            with pytest.raises(GraphError):
                CSRGraph.from_edge_arrays(3, np.array([0]), np.array([1]), np.array([bad]))

    def test_from_edge_arrays_rejects_out_of_range(self):
        import numpy as np

        with pytest.raises(GraphError):
            CSRGraph.from_edge_arrays(3, np.array([0]), np.array([5]), np.array([1.0]))

    def test_non_int_vertices_rejected(self):
        graph = SocialGraph()
        graph.add_edge("a", "b", 1.0)
        with pytest.raises(GraphError):
            _csr(graph)

    def test_non_contiguous_labels(self):
        graph = SocialGraph(edges=[(10, 700, 2.0), (700, 35, 1.5)])
        csr = _csr(graph)
        assert not csr.identity_ids
        assert csr.vertices() == [10, 35, 700]
        assert csr.neighbors(700) == frozenset({10, 35})
        assert csr == graph


class TestSubstrateSurface:
    @pytest.fixture
    def pair(self):
        graph = make_random_graph(7, n=14, edge_prob=0.35)
        return graph, _csr(graph)

    def test_contains_len_iter(self, pair):
        graph, csr = pair
        assert len(csr) == len(graph)
        assert set(csr) == set(graph)
        assert 0 in csr
        assert 999 not in csr

    def test_adjacency_and_neighbors(self, pair):
        graph, csr = pair
        for v in graph:
            assert csr.adjacency(v) == graph.adjacency(v)
            assert csr.neighbors(v) == graph.neighbors(v)
            assert csr.degree(v) == graph.degree(v)

    def test_edges_and_total_distance(self, pair):
        graph, csr = pair
        assert sorted(csr.edges()) == sorted(graph.edges())
        assert csr.total_distance() == pytest.approx(graph.total_distance())

    def test_has_edge_and_distance(self, pair):
        graph, csr = pair
        u, v, d = graph.edges()[0]
        assert csr.has_edge(u, v) and csr.has_edge(v, u)
        assert csr.distance(u, v) == d
        with pytest.raises(EdgeNotFoundError):
            csr.distance(u, u)

    def test_unknown_vertex_raises(self, pair):
        _, csr = pair
        with pytest.raises(VertexNotFoundError):
            csr.neighbors(999)
        with pytest.raises(VertexNotFoundError):
            csr.adjacency(-1)

    def test_subgraph_matches_social_subgraph(self, pair):
        graph, csr = pair
        keep = [v for v in graph.vertices() if v % 2 == 0]
        assert csr.subgraph(keep) == graph.subgraph(keep)
        # Vertices absent from the graph are ignored, as SocialGraph does.
        assert csr.subgraph(keep + [999]) == graph.subgraph(keep + [999])

    def test_bounded_distances_validation(self, pair):
        _, csr = pair
        with pytest.raises(VertexNotFoundError):
            csr.bounded_distances(999, 2)
        with pytest.raises(ValueError):
            csr.bounded_distances(0, 0)


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        graph = make_random_graph(11, n=10, edge_prob=0.5)
        csr = _csr(graph)
        path = tmp_path / "g.stgq"
        version = csr.save(path)
        for mmap in (True, False):
            back = load_stgq(path, mmap=mmap)
            assert back == graph
            assert back.version == version
            assert back.path == str(path)

    def test_magic_bytes(self, tmp_path):
        path = tmp_path / "g.stgq"
        _csr(make_random_graph(0, n=6)).save(path)
        assert path.read_bytes()[: len(STGQ_MAGIC)] == STGQ_MAGIC

    def test_version_is_content_hash(self, tmp_path):
        graph = make_random_graph(5, n=8, edge_prob=0.5)
        v1 = _csr(graph).save(tmp_path / "a.stgq")
        v2 = _csr(graph).save(tmp_path / "b.stgq")
        assert v1 == v2  # same content, path-independent
        other = make_random_graph(6, n=8, edge_prob=0.5)
        v3 = _csr(other).save(tmp_path / "c.stgq")
        assert v3 != v1

    def test_inspect_matches_graph(self, tmp_path):
        graph = make_random_graph(2, n=9, edge_prob=0.4)
        csr = _csr(graph)
        path = tmp_path / "g.stgq"
        version = csr.save(path)
        info = inspect_stgq(path)
        assert info["n"] == graph.vertex_count
        assert info["m"] == graph.edge_count
        assert info["version"] == version
        assert info["identity_ids"]
        assert set(info["dtypes"]) == {"indptr", "indices", "weights"}

    def test_pack_graph_helper(self, tmp_path):
        graph = make_random_graph(4, n=7, edge_prob=0.5)
        path = tmp_path / "g.stgq"
        csr = pack_graph(graph, path)
        assert csr.path == str(path)
        assert load_stgq(path) == graph
        # Packing an already-CSR graph persists it as-is.
        repacked = pack_graph(csr, tmp_path / "again.stgq")
        assert repacked is csr

    def test_empty_graph_round_trip(self, tmp_path):
        graph = SocialGraph(vertices=[0, 1, 2])
        path = tmp_path / "empty.stgq"
        pack_graph(graph, path)
        back = load_stgq(path)
        assert back.vertex_count == 3
        assert back.edge_count == 0
        assert back == graph

    def test_not_a_substrate_file(self, tmp_path):
        path = tmp_path / "junk.stgq"
        path.write_bytes(b"definitely not a substrate file")
        with pytest.raises(GraphError):
            load_stgq(path)
        with pytest.raises(GraphError):
            inspect_stgq(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "g.stgq"
        _csr(make_random_graph(1, n=8, edge_prob=0.5)).save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 64])
        with pytest.raises(GraphError):
            load_stgq(path)


class TestPickling:
    def test_unsaved_graph_pickles_by_value(self):
        graph = make_random_graph(8, n=9, edge_prob=0.4)
        csr = _csr(graph)
        clone = pickle.loads(pickle.dumps(csr))
        assert clone == graph
        assert clone.path is None

    def test_saved_graph_pickles_as_path(self, tmp_path):
        graph = make_random_graph(9, n=9, edge_prob=0.4)
        csr = _csr(graph)
        csr.save(tmp_path / "g.stgq")
        blob = pickle.dumps(csr)
        # Path + version, not megabytes of arrays.
        assert len(blob) < 512
        clone = pickle.loads(blob)
        assert clone == graph
        assert clone.path == csr.path
        assert clone.version == csr.version

    def test_tampered_file_fails_version_check(self, tmp_path):
        graph = make_random_graph(10, n=9, edge_prob=0.4)
        csr = _csr(graph)
        path = tmp_path / "g.stgq"
        csr.save(path)
        blob = pickle.dumps(csr)
        # Replace the file with a different graph: the version embedded in
        # the pickle no longer matches the file, and unpickling must refuse
        # to serve the silently-changed substrate.
        _csr(make_random_graph(99, n=9, edge_prob=0.4)).save(path)
        with pytest.raises(GraphError):
            pickle.loads(blob)


class TestQuantization:
    """int32 weight quantisation (``save(quantize=True)`` / ``pack --quantize``)."""

    def test_quantized_file_halves_weight_storage(self, tmp_path):
        graph = make_random_graph(12, n=40, edge_prob=0.3)
        csr = _csr(graph)
        plain, packed = tmp_path / "plain.stgq", tmp_path / "quant.stgq"
        csr.save(plain)
        csr.save(packed, quantize=True)
        # float64 -> int32 weights: the weights section halves; the file
        # shrinks by ~4 bytes per directed edge (header overhead aside).
        saved = plain.stat().st_size - packed.stat().st_size
        assert saved >= 4 * 2 * graph.edge_count - 256

    def test_round_trip_preserves_weights_within_quantum(self, tmp_path):
        graph = make_random_graph(13, n=20, edge_prob=0.4)
        csr = _csr(graph)
        path = tmp_path / "q.stgq"
        csr.save(path, quantize=True)
        back = load_stgq(path)
        assert back.vertex_count == graph.vertex_count
        assert back.edge_count == graph.edge_count
        quantum = max(w for _, _, w in graph.edges()) / (2**31 - 1)
        for u, v, w in graph.edges():
            assert abs(back.distance(u, v) - w) <= quantum

    def test_quantized_format_and_inspect(self, tmp_path):
        graph = make_random_graph(14, n=10, edge_prob=0.5)
        path = tmp_path / "q.stgq"
        _csr(graph).save(path, quantize=True)
        info = inspect_stgq(path)
        assert info["format"] == 2
        assert info["quantized"] is True
        assert info["weight_scale"] > 0
        assert info["dtypes"]["weights"].endswith("i4")  # int32 on disk
        # A plain save stays format 1 and reports unquantized.
        plain = tmp_path / "p.stgq"
        _csr(graph).save(plain)
        assert inspect_stgq(plain)["format"] == 1
        assert inspect_stgq(plain)["quantized"] is False

    def test_version_hash_covers_dequantized_weights(self, tmp_path):
        """verify=True, re-save and pickling all agree on the version."""
        graph = make_random_graph(15, n=12, edge_prob=0.4)
        path = tmp_path / "q.stgq"
        version = _csr(graph).save(path, quantize=True)
        back = load_stgq(path, verify=True)  # recomputes over loaded arrays
        assert back.version == version
        # Re-saving the loaded (dequantized) graph quantized reproduces the
        # version: the hash covers what a loader reconstructs.
        again = back.save(tmp_path / "again.stgq", quantize=True)
        assert again == version

    def test_quantized_save_does_not_bind_instance(self, tmp_path):
        """The in-memory float graph is NOT the quantized file's content."""
        graph = make_random_graph(16, n=10, edge_prob=0.4)
        csr = _csr(graph)
        csr.save(tmp_path / "q.stgq", quantize=True)
        assert csr.path is None  # would otherwise pickle-by-path a lie
        csr.save(tmp_path / "p.stgq")
        assert csr.path == str(tmp_path / "p.stgq")

    def test_pack_graph_quantize_returns_file_backed_graph(self, tmp_path):
        graph = make_random_graph(17, n=10, edge_prob=0.4)
        path = tmp_path / "q.stgq"
        csr = pack_graph(graph, path, quantize=True)
        assert csr.path == str(path)
        assert csr.version == load_stgq(path).version
        blob = pickle.dumps(csr)
        assert len(blob) < 512  # pickles by path, safe: version matches file

    def test_quantized_substrate_serves_queries(self, tmp_path):
        """End to end: a quantized substrate behind a QueryService."""
        from repro.core import SGQuery
        from repro.service import QueryService

        graph = make_random_graph(18, n=14, edge_prob=0.4)
        quantized = pack_graph(graph, tmp_path / "q.stgq", quantize=True)
        query = SGQuery(initiator=0, group_size=4, radius=2, acquaintance=1)
        with QueryService(graph) as reference, QueryService(quantized) as served:
            expected = reference.solve_many([query])[0]
            got = served.solve_many([query])[0]
        assert got.members == expected.members

    def test_bad_weight_scale_rejected(self, tmp_path):
        import json as _json
        import struct

        from repro.graph.csr import STGQ_MAGIC as magic

        path = tmp_path / "q.stgq"
        _csr(make_random_graph(19, n=8, edge_prob=0.5)).save(path, quantize=True)
        data = path.read_bytes()
        (header_len,) = struct.unpack_from("<I", data, len(magic))
        start = len(magic) + 4
        header = _json.loads(data[start : start + header_len])
        header["weight_scale"] = "x"
        blob = _json.dumps(header).encode("utf-8")
        assert len(blob) <= header_len  # shorter value: pad in place
        padded = blob + b" " * (header_len - len(blob))
        path.write_bytes(data[:start] + padded + data[start + header_len :])
        with pytest.raises(GraphError):
            load_stgq(path)


class TestFastPaths:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_bounded_distances_match_generic(self, seed, radius):
        from repro.graph.distance import bounded_distances

        graph = make_random_graph(seed, n=12, edge_prob=0.35)
        csr = _csr(graph)
        assert bounded_distances(csr, 0, radius) == bounded_distances(graph, 0, radius)

    @pytest.mark.parametrize("seed", range(5))
    def test_hop_counts_match_generic(self, seed):
        from repro.graph.distance import hop_counts

        graph = make_random_graph(seed, n=12, edge_prob=0.35)
        csr = _csr(graph)
        assert hop_counts(csr, 0) == hop_counts(graph, 0)
        assert hop_counts(csr, 0, max_edges=1) == hop_counts(graph, 0, max_edges=1)
