"""Unit tests for radius graph extraction (feasible graph GF, paper §3.2.1)."""

import math

import pytest

from repro.exceptions import VertexNotFoundError
from repro.graph import SocialGraph, bounded_distances, extract_feasible_graph


class TestExtraction:
    def test_source_always_included(self, star_graph):
        feasible = extract_feasible_graph(star_graph, "q", 1)
        assert "q" in feasible
        assert feasible.distance("q") == 0.0

    def test_radius_one_keeps_direct_friends(self, toy_dataset):
        feasible = extract_feasible_graph(toy_dataset.graph, "v7", 1)
        assert set(feasible.graph.vertices()) == {"v7", "v2", "v3", "v4", "v6", "v8"}

    def test_distances_are_bounded_minimum(self, toy_dataset):
        feasible = extract_feasible_graph(toy_dataset.graph, "v7", 1)
        assert feasible.distance("v2") == 17.0
        assert feasible.distance("v3") == 18.0
        assert feasible.distance("v4") == 27.0
        assert feasible.distance("v6") == 23.0
        assert feasible.distance("v8") == 25.0

    def test_unreachable_vertices_excluded(self):
        graph = SocialGraph(vertices=["q", "far"])
        graph.add_edge("q", "a", 1.0)
        graph.add_edge("a", "b", 1.0)
        graph.add_edge("b", "far", 1.0)
        feasible = extract_feasible_graph(graph, "q", 2)
        assert "far" not in feasible
        assert "b" in feasible

    def test_induced_edges_preserved(self, toy_dataset):
        feasible = extract_feasible_graph(toy_dataset.graph, "v7", 1)
        assert feasible.graph.has_edge("v2", "v4")
        assert feasible.graph.has_edge("v2", "v6")
        assert not feasible.graph.has_edge("v2", "v3")

    def test_candidates_sorted_by_distance(self, toy_dataset):
        feasible = extract_feasible_graph(toy_dataset.graph, "v7", 1)
        candidates = feasible.candidates
        assert candidates[0] == "v2"
        distances = [feasible.distance(v) for v in candidates]
        assert distances == sorted(distances)
        assert "v7" not in candidates

    def test_distance_uses_multi_edge_path_when_cheaper(self, two_hop_graph):
        feasible = extract_feasible_graph(two_hop_graph, "q", 2)
        assert feasible.distance("b") == 2.0

    def test_radius_limits_path_length_not_distance(self, two_hop_graph):
        feasible = extract_feasible_graph(two_hop_graph, "q", 1)
        # b is still reachable directly, but only via the expensive edge.
        assert feasible.distance("b") == 10.0

    def test_unknown_source_raises(self, triangle_graph):
        with pytest.raises(VertexNotFoundError):
            extract_feasible_graph(triangle_graph, "zzz", 1)

    def test_invalid_radius_raises(self, triangle_graph):
        with pytest.raises(ValueError):
            extract_feasible_graph(triangle_graph, "q", 0)

    def test_neighbors_and_contains_and_len(self, toy_dataset):
        feasible = extract_feasible_graph(toy_dataset.graph, "v7", 1)
        assert "v2" in feasible
        assert len(feasible) == 6
        assert "v4" in feasible.neighbors("v2")

    def test_distance_lookup_unknown_vertex(self, toy_dataset):
        feasible = extract_feasible_graph(toy_dataset.graph, "v7", 1)
        with pytest.raises(VertexNotFoundError):
            feasible.distance("nobody")

    def test_consistent_with_bounded_distances(self, random_graph_factory):
        for seed in range(5):
            graph = random_graph_factory(seed, n=12, edge_prob=0.3)
            dist = bounded_distances(graph, 0, 2)
            feasible = extract_feasible_graph(graph, 0, 2)
            expected = {v for v, d in dist.items() if d < math.inf}
            assert set(feasible.graph.vertices()) == expected
            for v in feasible.graph.vertices():
                assert feasible.distance(v) == dist[v]
