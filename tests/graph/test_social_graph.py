"""Unit tests for the SocialGraph adjacency structure."""

import pytest

from repro.exceptions import EdgeNotFoundError, GraphError, VertexNotFoundError
from repro.graph import SocialGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = SocialGraph()
        assert len(graph) == 0
        assert graph.vertex_count == 0
        assert graph.edge_count == 0
        assert graph.vertices() == []
        assert graph.edges() == []

    def test_init_from_edges_and_vertices(self):
        graph = SocialGraph(edges=[("a", "b", 1.0)], vertices=["c"])
        assert set(graph.vertices()) == {"a", "b", "c"}
        assert graph.edge_count == 1
        assert graph.degree("c") == 0

    def test_add_edge_creates_vertices(self):
        graph = SocialGraph()
        graph.add_edge(1, 2, 3.5)
        assert 1 in graph and 2 in graph
        assert graph.distance(1, 2) == 3.5
        assert graph.distance(2, 1) == 3.5

    def test_add_edge_updates_distance(self):
        graph = SocialGraph()
        graph.add_edge("a", "b", 2.0)
        graph.add_edge("a", "b", 7.0)
        assert graph.distance("a", "b") == 7.0
        assert graph.edge_count == 1

    def test_self_loop_rejected(self):
        graph = SocialGraph()
        with pytest.raises(GraphError):
            graph.add_edge("a", "a", 1.0)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_invalid_distance_rejected(self, bad):
        graph = SocialGraph()
        with pytest.raises(GraphError):
            graph.add_edge("a", "b", bad)

    def test_add_vertex_idempotent(self):
        graph = SocialGraph()
        graph.add_vertex("x")
        graph.add_vertex("x")
        assert graph.vertex_count == 1


class TestQueries:
    def test_neighbors(self, triangle_graph):
        assert triangle_graph.neighbors("q") == frozenset({"a", "b"})
        assert triangle_graph.neighbors("a") == frozenset({"q", "b"})

    def test_neighbors_unknown_vertex(self, triangle_graph):
        with pytest.raises(VertexNotFoundError):
            triangle_graph.neighbors("zzz")

    def test_degree(self, star_graph):
        assert star_graph.degree("q") == 4
        assert star_graph.degree("a") == 1

    def test_degree_unknown_vertex(self, star_graph):
        with pytest.raises(VertexNotFoundError):
            star_graph.degree("zzz")

    def test_has_edge(self, triangle_graph):
        assert triangle_graph.has_edge("a", "b")
        assert triangle_graph.has_edge("b", "a")
        assert not triangle_graph.has_edge("a", "zzz")

    def test_distance_missing_edge(self, star_graph):
        with pytest.raises(EdgeNotFoundError):
            star_graph.distance("a", "b")

    def test_edges_are_unique(self, triangle_graph):
        edges = triangle_graph.edges()
        assert len(edges) == 3
        pairs = {frozenset((u, v)) for u, v, _ in edges}
        assert len(pairs) == 3

    def test_total_distance(self, triangle_graph):
        assert triangle_graph.total_distance() == pytest.approx(4.5)

    def test_adjacency_returns_copy(self, triangle_graph):
        adj = triangle_graph.adjacency("q")
        adj["zzz"] = 1.0
        assert "zzz" not in triangle_graph.neighbors("q")

    def test_iteration_in_insertion_order(self):
        graph = SocialGraph(vertices=["c", "a", "b"])
        assert list(graph) == ["c", "a", "b"]


class TestMutation:
    def test_remove_edge(self, triangle_graph):
        triangle_graph.remove_edge("a", "b")
        assert not triangle_graph.has_edge("a", "b")
        assert triangle_graph.edge_count == 2

    def test_remove_missing_edge(self, triangle_graph):
        with pytest.raises(EdgeNotFoundError):
            triangle_graph.remove_edge("a", "zzz")

    def test_remove_vertex(self, triangle_graph):
        triangle_graph.remove_vertex("a")
        assert "a" not in triangle_graph
        assert not triangle_graph.has_edge("q", "a")
        assert triangle_graph.edge_count == 1

    def test_remove_missing_vertex(self, triangle_graph):
        with pytest.raises(VertexNotFoundError):
            triangle_graph.remove_vertex("zzz")

    def test_neighbor_cache_invalidated_on_mutation(self, triangle_graph):
        assert "b" in triangle_graph.neighbors("a")
        triangle_graph.remove_edge("a", "b")
        assert "b" not in triangle_graph.neighbors("a")


class TestDerivedGraphs:
    def test_subgraph_induces_edges(self, toy_dataset):
        graph = toy_dataset.graph
        sub = graph.subgraph(["v7", "v2", "v4"])
        assert set(sub.vertices()) == {"v7", "v2", "v4"}
        assert sub.has_edge("v2", "v4")
        assert sub.has_edge("v7", "v2")
        assert not sub.has_edge("v7", "v6")

    def test_subgraph_ignores_unknown_vertices(self, triangle_graph):
        sub = triangle_graph.subgraph(["a", "zzz"])
        assert set(sub.vertices()) == {"a"}

    def test_copy_is_independent(self, triangle_graph):
        clone = triangle_graph.copy()
        clone.remove_edge("a", "b")
        assert triangle_graph.has_edge("a", "b")
        assert not clone.has_edge("a", "b")

    def test_equality(self, triangle_graph):
        assert triangle_graph == triangle_graph.copy()
        other = triangle_graph.copy()
        other.add_edge("q", "z", 1.0)
        assert triangle_graph != other
        assert triangle_graph != "not a graph"


class TestNetworkxInterop:
    def test_round_trip(self, toy_dataset):
        nx_graph = toy_dataset.graph.to_networkx()
        back = SocialGraph.from_networkx(nx_graph)
        assert back == toy_dataset.graph

    def test_from_networkx_defaults_weight(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge("a", "b")
        sg = SocialGraph.from_networkx(g, default=2.5)
        assert sg.distance("a", "b") == 2.5

    def test_from_networkx_skips_self_loops(self):
        import networkx as nx

        g = nx.Graph()
        g.add_edge("a", "a", weight=1.0)
        g.add_edge("a", "b", weight=1.0)
        sg = SocialGraph.from_networkx(g)
        assert sg.edge_count == 1
