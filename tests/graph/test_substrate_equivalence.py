"""Byte-identical results across graph substrates (dict vs CSR).

The CSR substrate is a drop-in for :class:`SocialGraph` from the loaders to
the workers, so the assertions here mirror the kernel-equivalence suite's
strictness: identical bounded-distance maps, identical feasible graphs
(including vertex *order* — candidate tie-breaks depend on it), identical
SGQ/STGQ results with identical search statistics, and identical batches
through a :class:`QueryService` whether the graph is the adjacency dict or
an mmap'd ``.stgq`` file behind the process backend.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SearchParameters, SGQuery, SGSelect, STGQuery, STGSelect
from repro.graph import SocialGraph, bounded_distances, csr_available, extract_feasible_graph
from repro.temporal import CalendarStore, Schedule

from ..conftest import make_random_calendars, make_random_graph

pytestmark = pytest.mark.skipif(not csr_available(), reason="CSR substrate needs numpy")


def _csr(graph):
    from repro.graph.csr import CSRGraph

    return CSRGraph.from_social_graph(graph)


def _strip(stats):
    d = stats.as_dict()
    d.pop("elapsed_seconds")
    return d


def assert_extraction_identical(graph, source, radius):
    """The FeasibleGraph must match exactly, substrate notwithstanding."""
    fd = extract_feasible_graph(graph, source, radius)
    fc = extract_feasible_graph(_csr(graph), source, radius)
    assert fd.distances == fc.distances
    assert list(fd.distances) == list(fc.distances)  # canonical vertex order
    assert fd.graph.vertices() == fc.graph.vertices()
    assert fd.candidates == fc.candidates  # ties included
    for v in fd.graph:
        assert fd.graph.adjacency(v) == fc.graph.adjacency(v)
    return fd, fc


def assert_sg_identical(graph, query, **param_kwargs):
    params = SearchParameters(**param_kwargs)
    rd = SGSelect(graph, params).solve(query)
    rc = SGSelect(_csr(graph), params).solve(query)
    assert rc.feasible == rd.feasible
    assert rc.members == rd.members
    assert rc.total_distance == rd.total_distance
    assert _strip(rc.stats) == _strip(rd.stats)
    return rd


def assert_stg_identical(graph, calendars, query, **param_kwargs):
    params = SearchParameters(**param_kwargs)
    rd = STGSelect(graph, calendars, params).solve(query)
    rc = STGSelect(_csr(graph), calendars, params).solve(query)
    assert rc.feasible == rd.feasible
    assert rc.members == rd.members
    assert rc.total_distance == rd.total_distance
    assert rc.period == rd.period
    assert rc.pivot == rd.pivot
    assert rc.shared_slots == rd.shared_slots
    assert _strip(rc.stats) == _strip(rd.stats)
    return rd


@st.composite
def int_graphs(draw, min_vertices=4, max_vertices=10):
    """Random int-vertex graphs; small distance range forces distance ties,
    the case where candidate order (and with it the whole search) would
    diverge between substrates without the canonical extraction order."""
    n = draw(st.integers(min_vertices, max_vertices))
    graph = SocialGraph(vertices=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                graph.add_edge(u, v, draw(st.integers(1, 4)))
    return graph


class TestDistances:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_bounded_distances_equal(self, seed, radius):
        graph = make_random_graph(seed, n=13, edge_prob=0.35)
        assert bounded_distances(_csr(graph), 0, radius) == bounded_distances(graph, 0, radius)

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(int_graphs(), st.integers(1, 4))
    def test_bounded_distances_equal_hypothesis(self, graph, radius):
        assert bounded_distances(_csr(graph), 0, radius) == bounded_distances(graph, 0, radius)


class TestExtraction:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_seeded_grid(self, seed, radius):
        graph = make_random_graph(seed, n=13, edge_prob=0.35)
        assert_extraction_identical(graph, 0, radius)

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(int_graphs(), st.integers(1, 3))
    def test_hypothesis_graphs(self, graph, radius):
        assert_extraction_identical(graph, 0, radius)

    def test_tie_heavy_graph_candidate_order(self):
        # Unit distances everywhere: every candidate ties, so the order is
        # purely the canonical one — ascending id on both substrates.
        graph = SocialGraph(vertices=range(8))
        for v in range(1, 8):
            graph.add_edge(0, v, 1.0)
        fd, fc = assert_extraction_identical(graph, 0, 1)
        assert fd.candidates == sorted(fd.candidates)


class TestEndToEnd:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("p,k,s", [(3, 0, 1), (5, 2, 2), (4, 3, 3)])
    def test_sgq_grid(self, seed, p, k, s):
        graph = make_random_graph(seed, n=13, edge_prob=0.35)
        assert_sg_identical(graph, SGQuery(initiator=0, group_size=p, radius=s, acquaintance=k))

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("p,k,m", [(3, 0, 2), (4, 1, 3), (5, 2, 2)])
    def test_stgq_grid(self, seed, p, k, m):
        graph = make_random_graph(seed, n=11, edge_prob=0.4)
        calendars = make_random_calendars(seed + 500, list(graph), horizon=12, availability=0.6)
        query = STGQuery(initiator=0, group_size=p, radius=2, acquaintance=k, activity_length=m)
        assert_stg_identical(graph, calendars, query)

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(int_graphs(), st.integers(1, 5), st.integers(1, 3), st.integers(0, 2))
    def test_sgq_hypothesis(self, graph, p, s, k):
        assert_sg_identical(graph, SGQuery(initiator=0, group_size=p, radius=s, acquaintance=k))

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(int_graphs(max_vertices=8), st.data())
    def test_stgq_hypothesis(self, graph, data):
        horizon = data.draw(st.integers(4, 10))
        store = CalendarStore(horizon)
        for person in graph:
            slots = data.draw(st.lists(st.integers(1, horizon), unique=True, max_size=horizon))
            store.set(person, Schedule(horizon, slots))
        query = STGQuery(
            initiator=0,
            group_size=data.draw(st.integers(1, 5)),
            radius=data.draw(st.integers(1, 3)),
            acquaintance=data.draw(st.integers(0, 2)),
            activity_length=data.draw(st.integers(1, min(3, horizon))),
        )
        assert_stg_identical(graph, store, query)


class TestServiceOverSubstrate:
    """A service batch answers identically from the dict graph on the serial
    backend and from a path-backed (mmap'd) CSR substrate on the process
    backend — results and merged stats both."""

    @pytest.fixture
    def workload(self, tmp_path):
        from repro.graph.csr import pack_graph

        graph = make_random_graph(21, n=24, edge_prob=0.3)
        calendars = make_random_calendars(22, list(graph), horizon=12, availability=0.6)
        csr = pack_graph(graph, tmp_path / "g.stgq")
        queries = []
        for i in range(12):
            if i % 2:
                queries.append(
                    SGQuery(initiator=i % 5, group_size=3, radius=2, acquaintance=2)
                )
            else:
                queries.append(
                    STGQuery(
                        initiator=i % 5, group_size=3, radius=2, acquaintance=2,
                        activity_length=2,
                    )
                )
        return graph, calendars, csr, queries

    def _solve(self, graph, calendars, queries, backend, workers=None):
        from repro.service import QueryService

        service = QueryService(graph, calendars, backend=backend, max_workers=workers)
        with service:
            results = service.solve_many(queries)
            stats = service.stats()
        return results, stats

    def test_process_backend_over_substrate_matches_serial_dict(self, workload):
        graph, calendars, csr, queries = workload
        serial_results, serial_stats = self._solve(graph, calendars, queries, "serial")
        process_results, process_stats = self._solve(csr, calendars, queries, "process", workers=2)
        for rs, rp in zip(serial_results, process_results):
            assert rp.feasible == rs.feasible
            assert rp.members == rs.members
            assert rp.total_distance == rs.total_distance
            assert getattr(rp, "period", None) == getattr(rs, "period", None)
        sd, pd = serial_stats.as_dict(), process_stats.as_dict()
        for d in (sd, pd):
            d.pop("solve_seconds", None)
            d.pop("elapsed_seconds", None)
        assert pd == sd

    def test_serial_backend_over_substrate_matches_dict(self, workload):
        graph, calendars, csr, queries = workload
        dict_results, _ = self._solve(graph, calendars, queries, "serial")
        csr_results, _ = self._solve(csr, calendars, queries, "serial")
        for rd, rc in zip(dict_results, csr_results):
            assert rc.members == rd.members
            assert rc.total_distance == rd.total_distance
