"""Byte-identical results across graph substrates (dict vs CSR).

The CSR substrate is a drop-in for :class:`SocialGraph` from the loaders to
the workers, so the assertions here mirror the kernel-equivalence suite's
strictness: identical bounded-distance maps, identical feasible graphs
(including vertex *order* — candidate tie-breaks depend on it), identical
SGQ/STGQ results with identical search statistics, and identical batches
through a :class:`QueryService` whether the graph is the adjacency dict or
an mmap'd ``.stgq`` file behind the process backend.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import SearchParameters, SGQuery, SGSelect, STGQuery, STGSelect
from repro.graph import (
    GraphOverlay,
    SocialGraph,
    bounded_distances,
    csr_available,
    extract_feasible_graph,
    extract_query_forms,
    hop_counts,
)
from repro.temporal import CalendarStore, Schedule

from ..conftest import make_random_calendars, make_random_graph

pytestmark = pytest.mark.skipif(not csr_available(), reason="CSR substrate needs numpy")


def _csr(graph):
    from repro.graph.csr import CSRGraph

    return CSRGraph.from_social_graph(graph)


def _strip(stats):
    d = stats.as_dict()
    d.pop("elapsed_seconds")
    return d


def assert_extraction_identical(graph, source, radius):
    """The FeasibleGraph must match exactly, substrate notwithstanding."""
    fd = extract_feasible_graph(graph, source, radius)
    fc = extract_feasible_graph(_csr(graph), source, radius)
    assert fd.distances == fc.distances
    assert list(fd.distances) == list(fc.distances)  # canonical vertex order
    assert fd.graph.vertices() == fc.graph.vertices()
    assert fd.candidates == fc.candidates  # ties included
    for v in fd.graph:
        assert fd.graph.adjacency(v) == fc.graph.adjacency(v)
    return fd, fc


def assert_sg_identical(graph, query, **param_kwargs):
    params = SearchParameters(**param_kwargs)
    rd = SGSelect(graph, params).solve(query)
    rc = SGSelect(_csr(graph), params).solve(query)
    assert rc.feasible == rd.feasible
    assert rc.members == rd.members
    assert rc.total_distance == rd.total_distance
    assert _strip(rc.stats) == _strip(rd.stats)
    return rd


def assert_stg_identical(graph, calendars, query, **param_kwargs):
    params = SearchParameters(**param_kwargs)
    rd = STGSelect(graph, calendars, params).solve(query)
    rc = STGSelect(_csr(graph), calendars, params).solve(query)
    assert rc.feasible == rd.feasible
    assert rc.members == rd.members
    assert rc.total_distance == rd.total_distance
    assert rc.period == rd.period
    assert rc.pivot == rd.pivot
    assert rc.shared_slots == rd.shared_slots
    assert _strip(rc.stats) == _strip(rd.stats)
    return rd


@st.composite
def int_graphs(draw, min_vertices=4, max_vertices=10):
    """Random int-vertex graphs; small distance range forces distance ties,
    the case where candidate order (and with it the whole search) would
    diverge between substrates without the canonical extraction order."""
    n = draw(st.integers(min_vertices, max_vertices))
    graph = SocialGraph(vertices=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if draw(st.booleans()):
                graph.add_edge(u, v, draw(st.integers(1, 4)))
    return graph


class TestDistances:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_bounded_distances_equal(self, seed, radius):
        graph = make_random_graph(seed, n=13, edge_prob=0.35)
        assert bounded_distances(_csr(graph), 0, radius) == bounded_distances(graph, 0, radius)

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(int_graphs(), st.integers(1, 4))
    def test_bounded_distances_equal_hypothesis(self, graph, radius):
        assert bounded_distances(_csr(graph), 0, radius) == bounded_distances(graph, 0, radius)


class TestExtraction:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_seeded_grid(self, seed, radius):
        graph = make_random_graph(seed, n=13, edge_prob=0.35)
        assert_extraction_identical(graph, 0, radius)

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(int_graphs(), st.integers(1, 3))
    def test_hypothesis_graphs(self, graph, radius):
        assert_extraction_identical(graph, 0, radius)

    def test_tie_heavy_graph_candidate_order(self):
        # Unit distances everywhere: every candidate ties, so the order is
        # purely the canonical one — ascending id on both substrates.
        graph = SocialGraph(vertices=range(8))
        for v in range(1, 8):
            graph.add_edge(0, v, 1.0)
        fd, fc = assert_extraction_identical(graph, 0, 1)
        assert fd.candidates == sorted(fd.candidates)


class TestEndToEnd:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("p,k,s", [(3, 0, 1), (5, 2, 2), (4, 3, 3)])
    def test_sgq_grid(self, seed, p, k, s):
        graph = make_random_graph(seed, n=13, edge_prob=0.35)
        assert_sg_identical(graph, SGQuery(initiator=0, group_size=p, radius=s, acquaintance=k))

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("p,k,m", [(3, 0, 2), (4, 1, 3), (5, 2, 2)])
    def test_stgq_grid(self, seed, p, k, m):
        graph = make_random_graph(seed, n=11, edge_prob=0.4)
        calendars = make_random_calendars(seed + 500, list(graph), horizon=12, availability=0.6)
        query = STGQuery(initiator=0, group_size=p, radius=2, acquaintance=k, activity_length=m)
        assert_stg_identical(graph, calendars, query)

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(int_graphs(), st.integers(1, 5), st.integers(1, 3), st.integers(0, 2))
    def test_sgq_hypothesis(self, graph, p, s, k):
        assert_sg_identical(graph, SGQuery(initiator=0, group_size=p, radius=s, acquaintance=k))

    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(int_graphs(max_vertices=8), st.data())
    def test_stgq_hypothesis(self, graph, data):
        horizon = data.draw(st.integers(4, 10))
        store = CalendarStore(horizon)
        for person in graph:
            slots = data.draw(st.lists(st.integers(1, horizon), unique=True, max_size=horizon))
            store.set(person, Schedule(horizon, slots))
        query = STGQuery(
            initiator=0,
            group_size=data.draw(st.integers(1, 5)),
            radius=data.draw(st.integers(1, 3)),
            acquaintance=data.draw(st.integers(0, 2)),
            activity_length=data.draw(st.integers(1, min(3, horizon))),
        )
        assert_stg_identical(graph, store, query)


class TestServiceOverSubstrate:
    """A service batch answers identically from the dict graph on the serial
    backend and from a path-backed (mmap'd) CSR substrate on the process
    backend — results and merged stats both."""

    @pytest.fixture
    def workload(self, tmp_path):
        from repro.graph.csr import pack_graph

        graph = make_random_graph(21, n=24, edge_prob=0.3)
        calendars = make_random_calendars(22, list(graph), horizon=12, availability=0.6)
        csr = pack_graph(graph, tmp_path / "g.stgq")
        queries = []
        for i in range(12):
            if i % 2:
                queries.append(
                    SGQuery(initiator=i % 5, group_size=3, radius=2, acquaintance=2)
                )
            else:
                queries.append(
                    STGQuery(
                        initiator=i % 5, group_size=3, radius=2, acquaintance=2,
                        activity_length=2,
                    )
                )
        return graph, calendars, csr, queries

    def _solve(self, graph, calendars, queries, backend, workers=None):
        from repro.service import QueryService

        service = QueryService(graph, calendars, backend=backend, max_workers=workers)
        with service:
            results = service.solve_many(queries)
            stats = service.stats()
        return results, stats

    def test_process_backend_over_substrate_matches_serial_dict(self, workload):
        graph, calendars, csr, queries = workload
        serial_results, serial_stats = self._solve(graph, calendars, queries, "serial")
        process_results, process_stats = self._solve(csr, calendars, queries, "process", workers=2)
        for rs, rp in zip(serial_results, process_results):
            assert rp.feasible == rs.feasible
            assert rp.members == rs.members
            assert rp.total_distance == rs.total_distance
            assert getattr(rp, "period", None) == getattr(rs, "period", None)
        sd, pd = serial_stats.as_dict(), process_stats.as_dict()
        for d in (sd, pd):
            d.pop("solve_seconds", None)
            d.pop("elapsed_seconds", None)
        assert pd == sd

    def test_serial_backend_over_substrate_matches_dict(self, workload):
        graph, calendars, csr, queries = workload
        dict_results, _ = self._solve(graph, calendars, queries, "serial")
        csr_results, _ = self._solve(csr, calendars, queries, "serial")
        for rd, rc in zip(dict_results, csr_results):
            assert rc.members == rd.members
            assert rc.total_distance == rd.total_distance


def assert_overlay_identical(oc, od, source, radius):
    """Overlay-over-CSR (vectorised lane) vs overlay-over-dict (generic)."""
    assert bounded_distances(oc, source, radius) == bounded_distances(od, source, radius)
    assert hop_counts(oc, source, max_edges=radius) == hop_counts(od, source, max_edges=radius)
    fc = extract_feasible_graph(oc, source, radius)
    fd = extract_feasible_graph(od, source, radius)
    assert fd.distances == fc.distances
    assert list(fd.distances) == list(fc.distances)
    assert fd.candidates == fc.candidates
    for v in fd.graph:
        assert fd.graph.adjacency(v) == fc.graph.adjacency(v)


class TestOverlayOnCSR:
    """The overlay fast path (vectorised clean rows + scalar dirty patching)
    must answer exactly like the same edits replayed on the dict substrate."""

    def _pair(self, seed=3, n=14):
        graph = make_random_graph(seed, n=n, edge_prob=0.35)
        return GraphOverlay(_csr(graph)), GraphOverlay(graph)

    def test_mutated_base_weights(self):
        oc, od = self._pair()
        for overlay in (oc, od):
            overlay.add_edge(0, 1, 0.125)  # re-weight edges near the source
            overlay.add_edge(2, 5, 9.5)
        assert_overlay_identical(oc, od, 0, 2)

    def test_tombstoned_edges_inside_radius(self):
        oc, od = self._pair(seed=4)
        base = od.base
        victims = [(u, v) for u in (0, 1) for v in base.neighbors(u)][:3]
        for overlay in (oc, od):
            for u, v in victims:
                if overlay.has_edge(u, v):
                    overlay.remove_edge(u, v)
        assert_overlay_identical(oc, od, 0, 2)

    def test_extra_vertices_reachable(self):
        oc, od = self._pair(seed=5)
        for overlay in (oc, od):
            overlay.add_vertex(100)
            overlay.add_vertex(101)
            overlay.add_edge(0, 100, 0.5)
            overlay.add_edge(100, 101, 0.5)
        assert_overlay_identical(oc, od, 0, 2)
        assert_overlay_identical(oc, od, 100, 2)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_mixed_edit_grid(self, seed, radius):
        import random

        oc, od = self._pair(seed=seed)
        rng = random.Random(seed * 37 + radius)
        for _ in range(6):
            u, v = rng.sample(range(14), 2)
            if rng.random() < 0.5 and od.has_edge(u, v):
                for overlay in (oc, od):
                    overlay.remove_edge(u, v)
            else:
                w = rng.choice([0.25, 1.0, 3.5])
                for overlay in (oc, od):
                    overlay.add_edge(u, v, w)
        assert_overlay_identical(oc, od, 0, radius)


class TestValidationContract:
    """max_edges validation is aligned across dict, CSR and overlay:
    bounded_distances requires >= 1; hop_counts takes None (unlimited) or
    >= 0 (0 reaches only the source) and rejects negatives everywhere."""

    @pytest.fixture
    def substrates(self):
        graph = make_random_graph(0, n=8, edge_prob=0.5)
        dirty = GraphOverlay(_csr(graph))
        dirty.add_edge(0, 1, 0.5)
        return [graph, _csr(graph), GraphOverlay(_csr(graph)), dirty]

    @pytest.mark.parametrize("bad", [0, -1])
    def test_bounded_distances_rejects_nonpositive(self, substrates, bad):
        for graph in substrates:
            with pytest.raises(ValueError):
                bounded_distances(graph, 0, bad)

    def test_hop_counts_rejects_negative(self, substrates):
        for graph in substrates:
            with pytest.raises(ValueError):
                hop_counts(graph, 0, max_edges=-1)

    def test_hop_counts_zero_reaches_only_source(self, substrates):
        for graph in substrates:
            assert hop_counts(graph, 0, max_edges=0) == {0: 0}

    def test_hop_counts_none_is_unlimited(self, substrates):
        graph, csr, clean, dirty = substrates
        reference = hop_counts(graph, 0)
        assert hop_counts(csr, 0) == reference
        assert hop_counts(clean, 0) == reference
        edited = GraphOverlay(graph)
        edited.add_edge(0, 1, 0.5)
        assert hop_counts(dirty, 0) == hop_counts(edited, 0)


class TestScaleSpotCheck:
    """A 10^5-vertex seeded graph: the CSR extraction fast lane must produce
    byte-identical query forms to the dict generic path — feasible graph,
    compiled bitmasks and packed matrix alike."""

    def test_100k_extraction_byte_identical(self):
        from repro.datasets import generate_scale_dataset

        csr = generate_scale_dataset(100_000, seed=7).graph
        dict_graph = csr.to_social_graph()
        # 1009's radius-2 ego holds ~6.5k vertices; 31337's is a sparse
        # fringe of ~80 — one dense and one shallow neighbourhood, while
        # keeping the compiled-form comparison affordable for tier 1.
        for initiator in (1009, 31_337):
            fd, cd, pd = extract_query_forms(dict_graph, initiator, 2, kernel="numpy")
            fc, cc, pc = extract_query_forms(csr, initiator, 2, kernel="numpy")
            assert fd.distances == fc.distances
            assert list(fd.distances) == list(fc.distances)
            assert fd.candidates == fc.candidates
            for v in fd.graph:
                assert fd.graph.adjacency(v) == fc.graph.adjacency(v)
            assert cc.vertices == cd.vertices
            assert cc.index == cd.index
            assert cc.dist == cd.dist
            assert cc.adj == cd.adj
            assert cc.candidate_mask == cd.candidate_mask
            assert pc.rows.tobytes() == pd.rows.tobytes()
