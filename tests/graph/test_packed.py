"""Property tests for the packed (numpy uint64) graph form.

The packed matrix is the numpy kernel's substrate; its contract is exact
round-tripping against the Python-int bitmask representation the compiled
kernel (and the search state) uses.  Hypothesis drives the mask round-trip,
popcount-parity and lowest-set-bit-parity properties, including the
``n % 64 == 0`` word-boundary case; the remaining tests pin the derived
structure (``PackedAdjacency`` rows, columns, indicator, reductions) to the
compiled graph's int adjacency.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.graph import compile_feasible_graph, extract_feasible_graph  # noqa: E402
from repro.graph.compiled import iter_bits, lowest_bit_index  # noqa: E402
from repro.graph.packed import (  # noqa: E402
    PackedAdjacency,
    mask_to_row,
    numpy_kernel_available,
    pack_adjacency,
    pack_masks,
    row_popcount,
    row_to_mask,
    words_for,
)

if not numpy_kernel_available():  # pragma: no cover - numpy >= 2.0 in CI
    pytest.skip("numpy lacks bitwise_count (needs numpy >= 2.0)", allow_module_level=True)


#: Bit widths around the uint64 word boundaries, plus small/odd sizes.
BOUNDARY_WIDTHS = (1, 63, 64, 65, 127, 128, 192)


@st.composite
def masks_with_width(draw):
    """A (mask, words) pair where the mask fits the word budget."""
    width = draw(st.sampled_from(BOUNDARY_WIDTHS) | st.integers(1, 200))
    mask = draw(st.integers(0, (1 << width) - 1))
    return mask, words_for(width)


class TestMaskRowRoundTrip:
    @given(masks_with_width())
    def test_round_trip(self, case):
        mask, words = case
        row = mask_to_row(mask, words)
        assert row.dtype == np.uint64
        assert row.shape == (words,)
        assert row_to_mask(row) == mask

    @given(masks_with_width())
    def test_popcount_parity(self, case):
        mask, words = case
        assert row_popcount(mask_to_row(mask, words)) == mask.bit_count()

    @given(masks_with_width())
    def test_lowest_set_bit_parity(self, case):
        mask, words = case
        row = mask_to_row(mask, words)
        if mask == 0:
            assert not row.any()
            return
        # Lowest set bit of the int mask == first set bit of the row's
        # little-endian bit layout.
        bits = np.unpackbits(row.view(np.uint8), bitorder="little")
        assert int(np.argmax(bits)) == lowest_bit_index(mask)

    def test_word_boundary_exact(self):
        # n % 64 == 0: the top bit of the top word round-trips with no
        # phantom word appearing or disappearing.
        for width in (64, 128):
            mask = 1 << (width - 1) | 1
            row = mask_to_row(mask, words_for(width))
            assert row.shape == (width // 64,)
            assert row_to_mask(row) == mask

    @given(st.lists(st.integers(0, (1 << 130) - 1), max_size=6))
    def test_pack_masks_rows_round_trip(self, masks):
        words = words_for(130)
        matrix = pack_masks(masks, words)
        assert matrix.shape == (len(masks), words)
        for mask, row in zip(masks, matrix):
            assert row_to_mask(row) == mask


@pytest.fixture
def compiled_and_packed(toy_dataset):
    feasible = extract_feasible_graph(toy_dataset.graph, "v7", 2)
    compiled = compile_feasible_graph(feasible)
    return compiled, pack_adjacency(compiled)


class TestPackedAdjacency:
    def test_rows_match_int_adjacency(self, compiled_and_packed):
        compiled, packed = compiled_and_packed
        assert packed.n == len(compiled)
        for i, mask in enumerate(compiled.adj):
            assert row_to_mask(packed.rows[i]) == mask

    def test_rows_are_read_only(self, compiled_and_packed):
        _, packed = compiled_and_packed
        with pytest.raises(ValueError):
            packed.rows[0, 0] = np.uint64(1)

    def test_intersect_counts_equals_popcount_loop(self, compiled_and_packed):
        compiled, packed = compiled_and_packed
        mask = compiled.candidate_mask & 0b101101101101
        counts = packed.intersect_counts(packed.row(mask))
        for i, adj_mask in enumerate(compiled.adj):
            assert counts[i] == (mask & adj_mask).bit_count()

    def test_column_is_adjacency_indicator(self, compiled_and_packed):
        compiled, packed = compiled_and_packed
        for v in range(len(compiled)):
            column = packed.column(v)
            for u in range(len(compiled)):
                assert column[u] == (compiled.adj[u] >> v & 1)
            # Memoized columns are shared, so they must be immutable.
            if packed._columns:
                with pytest.raises(ValueError):
                    column[0] = 7

    def test_indicator_matches_iter_bits(self, compiled_and_packed):
        compiled, packed = compiled_and_packed
        mask = compiled.candidate_mask & 0b110110011
        indicator = packed.indicator(mask)
        assert indicator.shape == (packed.n,)
        assert set(np.nonzero(indicator)[0].tolist()) == set(iter_bits(mask))

    def test_memo_disabled_above_cap(self):
        adj = [0b10, 0b01]
        packed = PackedAdjacency(adj)
        assert packed._columns  # small universes memoize
        try:
            PackedAdjacency.COLUMN_MEMO_MAX_IDS = 1
            unmemoized = PackedAdjacency(adj)
            assert unmemoized._columns == []
            assert unmemoized.column(1)[0] == 1  # still computes correctly
        finally:
            PackedAdjacency.COLUMN_MEMO_MAX_IDS = 2048
