"""Unit tests for graph persistence (edge lists and JSON)."""

import pytest

from repro.exceptions import GraphError
from repro.graph import SocialGraph
from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    read_edge_list,
    read_json,
    write_edge_list,
    write_json,
)


class TestEdgeList:
    def test_round_trip(self, toy_dataset, tmp_path):
        path = tmp_path / "toy.edges"
        write_edge_list(toy_dataset.graph, path)
        back = read_edge_list(path)
        assert back == toy_dataset.graph

    def test_round_trip_with_int_vertices(self, tmp_path):
        graph = SocialGraph(edges=[(1, 2, 3.0), (2, 3, 4.5)])
        path = tmp_path / "ints.edges"
        write_edge_list(graph, path)
        back = read_edge_list(path, vertex_type=int)
        assert back == graph

    def test_header_written_as_comments(self, triangle_graph, tmp_path):
        path = tmp_path / "hdr.edges"
        write_edge_list(triangle_graph, path, header="first line\nsecond line")
        text = path.read_text()
        assert text.startswith("# first line\n# second line\n")
        assert read_edge_list(path) == triangle_graph

    def test_two_column_lines_default_distance(self, tmp_path):
        path = tmp_path / "plain.edges"
        path.write_text("a b\nb c\n")
        graph = read_edge_list(path)
        assert graph.distance("a", "b") == 1.0

    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = tmp_path / "messy.edges"
        path.write_text("# comment\n\na b 2.0\n")
        graph = read_edge_list(path)
        assert graph.edge_count == 1

    def test_invalid_distance_raises(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("a b notanumber\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_wrong_column_count_raises(self, tmp_path):
        path = tmp_path / "bad2.edges"
        path.write_text("a b 1.0 extra\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_whitespace_vertex_rejected_on_write(self, tmp_path):
        graph = SocialGraph(edges=[("a b", "c", 1.0)])
        with pytest.raises(GraphError):
            write_edge_list(graph, tmp_path / "bad.edges")


class TestJson:
    def test_round_trip(self, toy_dataset, tmp_path):
        path = tmp_path / "toy.json"
        write_json(toy_dataset.graph, path)
        assert read_json(path) == toy_dataset.graph

    def test_dict_round_trip_preserves_isolated_vertices(self):
        graph = SocialGraph(edges=[("a", "b", 1.0)], vertices=["lonely"])
        back = graph_from_dict(graph_to_dict(graph))
        assert "lonely" in back
        assert back == graph

    def test_malformed_edge_entry(self):
        with pytest.raises(GraphError):
            graph_from_dict({"vertices": ["a", "b"], "edges": [["a", "b"]]})
