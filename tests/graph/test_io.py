"""Unit tests for graph persistence (edge lists and JSON)."""

import pytest

from repro.exceptions import GraphError
from repro.graph import SocialGraph
from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    read_edge_list,
    read_json,
    read_snap_edge_list,
    write_edge_list,
    write_json,
)


class TestEdgeList:
    def test_round_trip(self, toy_dataset, tmp_path):
        path = tmp_path / "toy.edges"
        write_edge_list(toy_dataset.graph, path)
        back = read_edge_list(path)
        assert back == toy_dataset.graph

    def test_round_trip_with_int_vertices(self, tmp_path):
        graph = SocialGraph(edges=[(1, 2, 3.0), (2, 3, 4.5)])
        path = tmp_path / "ints.edges"
        write_edge_list(graph, path)
        back = read_edge_list(path, vertex_type=int)
        assert back == graph

    def test_header_written_as_comments(self, triangle_graph, tmp_path):
        path = tmp_path / "hdr.edges"
        write_edge_list(triangle_graph, path, header="first line\nsecond line")
        text = path.read_text()
        assert text.startswith("# first line\n# second line\n")
        assert read_edge_list(path) == triangle_graph

    def test_two_column_lines_default_distance(self, tmp_path):
        path = tmp_path / "plain.edges"
        path.write_text("a b\nb c\n")
        graph = read_edge_list(path)
        assert graph.distance("a", "b") == 1.0

    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = tmp_path / "messy.edges"
        path.write_text("# comment\n\na b 2.0\n")
        graph = read_edge_list(path)
        assert graph.edge_count == 1

    def test_invalid_distance_raises(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("a b notanumber\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_wrong_column_count_raises(self, tmp_path):
        path = tmp_path / "bad2.edges"
        path.write_text("a b 1.0 extra\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_whitespace_vertex_rejected_on_write(self, tmp_path):
        graph = SocialGraph(edges=[("a b", "c", 1.0)])
        with pytest.raises(GraphError):
            write_edge_list(graph, tmp_path / "bad.edges")


class TestJson:
    def test_round_trip(self, toy_dataset, tmp_path):
        path = tmp_path / "toy.json"
        write_json(toy_dataset.graph, path)
        assert read_json(path) == toy_dataset.graph

    def test_dict_round_trip_preserves_isolated_vertices(self):
        graph = SocialGraph(edges=[("a", "b", 1.0)], vertices=["lonely"])
        back = graph_from_dict(graph_to_dict(graph))
        assert "lonely" in back
        assert back == graph

    def test_malformed_edge_entry(self):
        with pytest.raises(GraphError):
            graph_from_dict({"vertices": ["a", "b"], "edges": [["a", "b"]]})


class TestSnapEdgeList:
    """Dirty-input coverage for the SNAP-style loader: every anomaly public
    network dumps actually contain is either normalised or rejected with a
    GraphError naming the line."""

    def _load(self, tmp_path, text, **kwargs):
        path = tmp_path / "snap.txt"
        path.write_text(text)
        return read_snap_edge_list(path, **kwargs)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        graph = self._load(tmp_path, "# SNAP header\n# n=3\n\n1 2 1.5\n\n2 3 2.0\n")
        assert graph.vertex_count == 3
        assert graph.edge_count == 2

    def test_missing_weight_defaults_to_unit_distance(self, tmp_path):
        graph = self._load(tmp_path, "1 2\n2 3 4.0\n")
        assert graph.distance(1, 2) == 1.0
        assert graph.distance(2, 3) == 4.0

    def test_custom_default_distance(self, tmp_path):
        graph = self._load(tmp_path, "1 2\n", default_distance=2.5)
        assert graph.distance(1, 2) == 2.5

    def test_self_loops_dropped_vertex_kept(self, tmp_path):
        graph = self._load(tmp_path, "1 1 3.0\n1 2 1.0\n7 7\n")
        assert graph.edge_count == 1
        assert 7 in graph  # the vertex survives even if its only line loops

    def test_duplicate_identical_edges_ignored(self, tmp_path):
        graph = self._load(tmp_path, "1 2 1.5\n1 2 1.5\n2 1 1.5\n")
        assert graph.edge_count == 1
        assert graph.distance(1, 2) == 1.5

    def test_reversed_duplicate_with_conflicting_distance_rejected(self, tmp_path):
        with pytest.raises(GraphError, match="line 2"):
            self._load(tmp_path, "1 2 1.5\n2 1 9.0\n")

    def test_non_contiguous_and_one_based_ids_kept_verbatim(self, tmp_path):
        graph = self._load(tmp_path, "1 700 2.0\n700 35 1.5\n")
        assert sorted(graph.vertices()) == [1, 35, 700]

    def test_non_integer_id_rejected_with_line(self, tmp_path):
        with pytest.raises(GraphError, match="line 2"):
            self._load(tmp_path, "1 2 1.0\nalpha 3 1.0\n")

    def test_malformed_distance_rejected_with_line(self, tmp_path):
        with pytest.raises(GraphError, match="line 1"):
            self._load(tmp_path, "1 2 fast\n")

    def test_non_positive_distance_rejected(self, tmp_path):
        with pytest.raises(GraphError, match="line 1"):
            self._load(tmp_path, "1 2 0.0\n")
        with pytest.raises(GraphError, match="line 1"):
            self._load(tmp_path, "1 2 -3.0\n")

    def test_non_finite_distance_rejected(self, tmp_path):
        with pytest.raises(GraphError, match="line 1"):
            self._load(tmp_path, "1 2 inf\n")
        with pytest.raises(GraphError, match="line 1"):
            self._load(tmp_path, "1 2 nan\n")

    def test_wrong_column_count_rejected(self, tmp_path):
        with pytest.raises(GraphError, match="line 1"):
            self._load(tmp_path, "1 2 1.0 extra\n")
        with pytest.raises(GraphError, match="line 1"):
            self._load(tmp_path, "1\n")

    def test_bad_default_distance_rejected(self, tmp_path):
        path = tmp_path / "ok.txt"
        path.write_text("1 2\n")
        for bad in (0.0, -1.0, float("inf")):
            with pytest.raises(GraphError):
                read_snap_edge_list(path, default_distance=bad)
