"""Tests for live-graph mutations: Mutation/MutationBatch, overlay, traces."""

import pytest

from repro.exceptions import (
    EdgeNotFoundError,
    GraphError,
    ProtocolError,
    VertexNotFoundError,
)
from repro.graph import (
    GraphOverlay,
    Mutation,
    MutationBatch,
    SocialGraph,
    apply_mutation,
    generate_mutation_trace,
    graph_from_snapshot,
    graph_to_snapshot,
    load_mutation_trace,
    save_mutation_trace,
)
from repro.graph.csr import csr_available
from repro.temporal.calendars import CalendarStore
from repro.temporal.schedule import Schedule

from ..conftest import make_random_graph


def path_graph(n=6):
    """0-1-2-...-(n-1) with unit distances."""
    return SocialGraph([(i, i + 1, 1.0) for i in range(n - 1)])


# ----------------------------------------------------------------------
# Mutation / MutationBatch
# ----------------------------------------------------------------------
class TestMutation:
    def test_constructors_and_touched_vertices(self):
        add = Mutation.add_edge(1, 2, 0.5)
        rem = Mutation.remove_edge(3, 4)
        avail = Mutation.update_availability(5, (1, 2, 3))
        assert add.touched_vertices() == (1, 2)
        assert rem.touched_vertices() == (3, 4)
        # Availability changes topology-independent state: no ego is stale.
        assert avail.touched_vertices() == ()

    def test_validation(self):
        with pytest.raises(GraphError):
            Mutation(kind="nonsense")
        with pytest.raises(GraphError):
            Mutation(kind="add_edge", u=1)  # missing endpoint
        with pytest.raises(GraphError):
            Mutation(kind="add_edge", u=1, v=2)  # missing distance
        with pytest.raises(GraphError):
            Mutation(kind="update_availability", person=1)  # missing slots
        # Graph-level validity (self-loops, bad distances) is apply-time:
        # the target graph raises, and prefix semantics report the position.
        with pytest.raises(GraphError):
            apply_mutation(SocialGraph(), None, Mutation.add_edge(1, 1, 0.5))
        with pytest.raises(GraphError):
            apply_mutation(SocialGraph(), None, Mutation.add_edge(1, 2, 0.0))

    @pytest.mark.parametrize(
        "mutation",
        [
            Mutation.add_edge(1, 2, 0.5),
            Mutation.remove_edge(3, 4),
            Mutation.update_availability(5, (1, 2, 3)),
        ],
    )
    def test_wire_round_trip(self, mutation):
        assert Mutation.from_wire(mutation.as_wire()) == mutation

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {"kind": "unknown_kind"},
            {"kind": "add_edge", "u": 1},  # missing v/distance
            {"kind": "update_availability", "person": 1},  # missing slots
        ],
    )
    def test_from_wire_rejects_malformed(self, payload):
        with pytest.raises(ProtocolError):
            Mutation.from_wire(payload)

    def test_batch_span_must_match_count(self):
        mutations = (Mutation.add_edge(1, 2, 1.0), Mutation.remove_edge(1, 2))
        MutationBatch(3, 5, mutations)  # exact span: fine
        with pytest.raises(GraphError):
            MutationBatch(3, 6, mutations)
        with pytest.raises(GraphError):
            MutationBatch(5, 3, ())

    def test_batch_wire_round_trip(self):
        batch = MutationBatch(7, 9, (Mutation.add_edge(1, 2, 1.0), Mutation.remove_edge(3, 4)))
        decoded = MutationBatch.from_wire(batch.as_wire())
        assert decoded == batch
        with pytest.raises(ProtocolError):
            MutationBatch.from_wire({"from_version": 0, "to_version": 2, "mutations": "nope"})


# ----------------------------------------------------------------------
# apply_mutation on the plain SocialGraph
# ----------------------------------------------------------------------
class TestApplyMutation:
    def test_add_and_remove_edge(self):
        graph = path_graph()
        assert apply_mutation(graph, None, Mutation.add_edge(0, 3, 2.0)) == (0, 3)
        assert graph.distance(0, 3) == 2.0
        assert apply_mutation(graph, None, Mutation.remove_edge(0, 1)) == (0, 1)
        assert not graph.has_edge(0, 1)

    def test_remove_nonexistent_edge_raises_graph_error(self):
        graph = path_graph()
        with pytest.raises(GraphError):
            apply_mutation(graph, None, Mutation.remove_edge(0, 5))
        # The specific subclass survives too.
        with pytest.raises(EdgeNotFoundError):
            apply_mutation(graph, None, Mutation.remove_edge(0, 5))

    def test_update_availability_writes_calendar(self):
        graph = path_graph()
        calendars = CalendarStore(8)
        calendars.set(2, Schedule(8, [1, 2]))
        touched = apply_mutation(graph, calendars, Mutation.update_availability(2, (3, 4, 5)))
        assert touched == ()
        assert calendars.get(2).available_slots() == [3, 4, 5]

    def test_graph_version_counts_one_per_call(self):
        graph = path_graph()
        assert graph.graph_version == 0  # construction never counts
        graph.add_edge(0, 5, 1.0)  # implicit endpoints exist: one bump
        assert graph.graph_version == 1
        graph.add_edge(0, "new", 1.0)  # implicit vertex creation: still one bump
        assert graph.graph_version == 2
        graph.remove_edge(0, "new")
        assert graph.graph_version == 3


# ----------------------------------------------------------------------
# GraphOverlay
# ----------------------------------------------------------------------
class TestGraphOverlay:
    def test_base_stays_immutable(self):
        base = path_graph()
        before = sorted(tuple(sorted((u, v))) + (d,) for u, v, d in base.edges())
        overlay = GraphOverlay(base)
        overlay.add_edge(0, 3, 2.0)
        overlay.remove_edge(1, 2)
        after = sorted(tuple(sorted((u, v))) + (d,) for u, v, d in base.edges())
        assert before == after
        assert overlay.base is base

    def test_matches_social_graph_under_same_mutations(self):
        base = make_random_graph(13, n=12, edge_prob=0.4)
        overlay = GraphOverlay(base)
        mirror = base.copy()
        trace = generate_mutation_trace(base, 20, seed=3)
        for mutation in trace:
            apply_mutation(overlay, None, mutation)
            apply_mutation(mirror, None, mutation)
        assert set(overlay.vertices()) == set(mirror.vertices())
        assert overlay.edge_count == mirror.edge_count

        def canon(edges):
            return sorted((*sorted((u, v), key=repr), d) for u, v, d in edges)

        assert canon(overlay.edges()) == canon(mirror.edges())
        for v in mirror.vertices():
            assert overlay.neighbors(v) == mirror.neighbors(v)
            assert overlay.adjacency(v) == dict(mirror.adjacency(v))
            assert overlay.degree(v) == mirror.degree(v)

    def test_tombstone_revive_and_reweight(self):
        overlay = GraphOverlay(path_graph())
        overlay.remove_edge(1, 2)
        assert not overlay.has_edge(1, 2)
        with pytest.raises(EdgeNotFoundError):
            overlay.distance(1, 2)
        overlay.add_edge(1, 2, 9.0)  # revive with a new weight
        assert overlay.distance(1, 2) == 9.0
        overlay.add_edge(2, 3, 4.0)  # shadow a live base edge's weight
        assert overlay.distance(2, 3) == 4.0
        assert overlay.graph_version == 3

    def test_remove_nonexistent_raises(self):
        overlay = GraphOverlay(path_graph())
        with pytest.raises(EdgeNotFoundError):
            overlay.remove_edge(0, 5)
        overlay.remove_edge(0, 1)
        with pytest.raises(EdgeNotFoundError):
            overlay.remove_edge(0, 1)  # already tombstoned

    def test_new_vertices_and_subgraph(self):
        overlay = GraphOverlay(path_graph(4))
        overlay.add_edge(3, "ext", 1.5)
        assert "ext" in overlay
        assert overlay.vertex_count == 5
        assert sorted(overlay.neighbors("ext"), key=repr) == [3]
        with pytest.raises(VertexNotFoundError):
            overlay.neighbors("ghost")
        sub = overlay.subgraph([2, 3, "ext"])
        assert isinstance(sub, SocialGraph)
        assert sub.has_edge(3, "ext") and sub.has_edge(2, 3)
        assert sub.vertex_count == 3

    @pytest.mark.skipif(not csr_available(), reason="numpy not installed")
    def test_overlay_over_csr_substrate(self, tmp_path):
        from repro.graph.csr import load_stgq, pack_graph

        base = make_random_graph(5, n=10, edge_prob=0.5)
        pack_graph(base, tmp_path / "g.stgq")
        csr = load_stgq(tmp_path / "g.stgq", mmap=True)
        overlay = GraphOverlay(csr)
        u, v, _ = base.edges()[0]
        overlay.remove_edge(u, v)
        assert not overlay.has_edge(u, v)
        assert csr.has_edge(u, v)  # the mmap'd base is untouched
        overlay.add_edge(u, 999, 1.0)
        assert overlay.has_edge(u, 999)
        assert overlay.edge_count == csr.edge_count  # one removed, one added


# ----------------------------------------------------------------------
# seeded traces + snapshots
# ----------------------------------------------------------------------
class TestTraces:
    def test_trace_is_deterministic_and_valid_in_sequence(self):
        graph = make_random_graph(17, n=16, edge_prob=0.4)
        trace_a = generate_mutation_trace(graph, 30, seed=5, horizon=10)
        trace_b = generate_mutation_trace(graph, 30, seed=5, horizon=10)
        assert trace_a == trace_b
        assert len(trace_a) == 30
        assert generate_mutation_trace(graph, 30, seed=6, horizon=10) != trace_a
        # Valid in sequence: every mutation applies cleanly in order.
        target = graph.copy()
        calendars = CalendarStore(10)
        for person in graph.vertices():
            calendars.set(person, Schedule(10, []))
        for mutation in trace_a:
            apply_mutation(target, calendars, mutation)

    def test_trace_without_horizon_has_no_availability(self):
        graph = make_random_graph(19, n=12, edge_prob=0.4)
        trace = generate_mutation_trace(graph, 20, seed=1)
        assert all(m.kind != "update_availability" for m in trace)

    def test_save_load_round_trip(self, tmp_path):
        graph = make_random_graph(23, n=12, edge_prob=0.4)
        trace = generate_mutation_trace(graph, 15, seed=2, horizon=8)
        path = tmp_path / "trace.jsonl"
        save_mutation_trace(path, trace)
        assert load_mutation_trace(path) == trace

    def test_load_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "add_edge", "u": 1, "v": 2, "distance": 1.0}\nnot json\n')
        with pytest.raises(ProtocolError):
            load_mutation_trace(path)

    def test_snapshot_round_trip(self):
        graph = make_random_graph(29, n=12, edge_prob=0.4)
        rebuilt = graph_from_snapshot(graph_to_snapshot(graph))
        assert rebuilt == graph
        with pytest.raises(ProtocolError):
            graph_from_snapshot({"vertices": [1]})  # no edges key
