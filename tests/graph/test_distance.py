"""Unit tests for edge-bounded shortest distances (Definition 1 of the paper)."""

import math

import pytest

from repro.exceptions import VertexNotFoundError
from repro.graph import (
    SocialGraph,
    bounded_distance_table,
    bounded_distances,
    bounded_shortest_path,
    hop_counts,
)


class TestBoundedDistances:
    def test_source_distance_is_zero(self, triangle_graph):
        dist = bounded_distances(triangle_graph, "q", 1)
        assert dist["q"] == 0.0

    def test_direct_neighbors(self, triangle_graph):
        dist = bounded_distances(triangle_graph, "q", 1)
        assert dist["a"] == 1.0
        assert dist["b"] == 2.0

    def test_edge_bound_restricts_paths(self, two_hop_graph):
        one_edge = bounded_distances(two_hop_graph, "q", 1)
        two_edges = bounded_distances(two_hop_graph, "q", 2)
        # With one edge allowed only the expensive direct edge reaches b.
        assert one_edge["b"] == 10.0
        # With two edges the cheaper q-a-b path wins.
        assert two_edges["b"] == 2.0

    def test_unreachable_vertex_is_absent(self):
        # Reachable-only contract: vertices outside the bound get no entry
        # (an entry per graph vertex would be O(|V|) per query), and the
        # conventional infinite default comes from dict.get.
        graph = SocialGraph(vertices=["q", "island"])
        graph.add_edge("q", "a", 1.0)
        dist = bounded_distances(graph, "q", 3)
        assert "island" not in dist
        assert dist.get("island", math.inf) == math.inf
        assert set(dist) == {"q", "a"}

    def test_unknown_source_raises(self, triangle_graph):
        with pytest.raises(VertexNotFoundError):
            bounded_distances(triangle_graph, "zzz", 1)

    def test_invalid_radius_raises(self, triangle_graph):
        with pytest.raises(ValueError):
            bounded_distances(triangle_graph, "q", 0)

    def test_monotone_in_radius(self, toy_dataset):
        graph = toy_dataset.graph
        d1 = bounded_distances(graph, "v7", 1)
        d2 = bounded_distances(graph, "v7", 2)
        d3 = bounded_distances(graph, "v7", 3)
        for v in graph:
            assert d2.get(v, math.inf) <= d1.get(v, math.inf)
            assert d3.get(v, math.inf) <= d2.get(v, math.inf)
        assert set(d1) <= set(d2) <= set(d3)

    def test_matches_networkx_when_radius_large(self, toy_dataset):
        """With a radius at least |V| - 1 the bound is vacuous and the result
        must equal the ordinary shortest-path distance."""
        import networkx as nx

        graph = toy_dataset.graph
        ours = bounded_distances(graph, "v7", graph.vertex_count)
        reference = nx.single_source_dijkstra_path_length(graph.to_networkx(), "v7")
        for v, d in reference.items():
            assert ours[v] == pytest.approx(d)

    def test_distance_can_exceed_min_edge_path(self, two_hop_graph):
        """The minimum-edge path (1 edge, cost 10) differs from the bounded
        minimum-distance path (2 edges, cost 2) — the paper's motivating case."""
        hops = hop_counts(two_hop_graph, "q")
        assert hops["b"] == 1
        dist = bounded_distances(two_hop_graph, "q", 2)
        assert dist["b"] == 2.0


class TestDistanceTable:
    def test_table_has_radius_plus_one_rows(self, triangle_graph):
        table = bounded_distance_table(triangle_graph, "q", 3)
        assert len(table) == 4

    def test_table_row_zero(self, triangle_graph):
        table = bounded_distance_table(triangle_graph, "q", 1)
        assert table[0]["q"] == 0.0
        assert table[0]["a"] == math.inf

    def test_table_rows_monotone(self, toy_dataset):
        table = bounded_distance_table(toy_dataset.graph, "v7", 3)
        for i in range(1, len(table)):
            for v in toy_dataset.graph:
                assert table[i][v] <= table[i - 1][v]

    def test_table_final_row_matches_bounded_distances(self, toy_dataset):
        graph = toy_dataset.graph
        table = bounded_distance_table(graph, "v7", 2)
        direct = bounded_distances(graph, "v7", 2)
        # The DP table keeps every vertex (inf for unreached); the frontier
        # walk returns reached vertices only.
        assert {v: d for v, d in table[2].items() if d < math.inf} == direct

    def test_negative_radius_rejected(self, triangle_graph):
        with pytest.raises(ValueError):
            bounded_distance_table(triangle_graph, "q", -1)


class TestShortestPath:
    def test_path_endpoints_and_cost(self, two_hop_graph):
        path, cost = bounded_shortest_path(two_hop_graph, "q", "b", 2)
        assert path[0] == "q" and path[-1] == "b"
        assert cost == 2.0
        assert path == ["q", "a", "b"]

    def test_path_respects_edge_bound(self, two_hop_graph):
        path, cost = bounded_shortest_path(two_hop_graph, "q", "b", 1)
        assert path == ["q", "b"]
        assert cost == 10.0

    def test_unreachable_returns_none(self):
        graph = SocialGraph(vertices=["q", "x"])
        graph.add_edge("q", "a", 1.0)
        assert bounded_shortest_path(graph, "q", "x", 3) is None

    def test_path_to_source(self, triangle_graph):
        path, cost = bounded_shortest_path(triangle_graph, "q", "q", 1)
        assert path == ["q"]
        assert cost == 0.0

    def test_path_cost_matches_edge_sum(self, toy_dataset):
        graph = toy_dataset.graph
        for target in ["v2", "v4", "v6"]:
            path, cost = bounded_shortest_path(graph, "v7", target, 2)
            edge_sum = sum(graph.distance(path[i], path[i + 1]) for i in range(len(path) - 1))
            assert cost == pytest.approx(edge_sum)
            assert len(path) - 1 <= 2


class TestHopCounts:
    def test_hop_counts_bfs(self, toy_dataset):
        hops = hop_counts(toy_dataset.graph, "v7")
        assert hops["v7"] == 0
        assert hops["v2"] == 1
        assert hops["v8"] == 1

    def test_hop_counts_limited(self, two_hop_graph):
        hops = hop_counts(two_hop_graph, "q", max_edges=1)
        assert set(hops) == {"q", "a", "b"}
        hops0_graph = SocialGraph()
        hops0_graph.add_edge("q", "a", 1.0)
        hops0_graph.add_edge("a", "b", 1.0)
        limited = hop_counts(hops0_graph, "q", max_edges=1)
        assert "b" not in limited

    def test_hop_counts_unknown_source(self, triangle_graph):
        with pytest.raises(VertexNotFoundError):
            hop_counts(triangle_graph, "zzz")
