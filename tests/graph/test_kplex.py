"""Unit tests for the k-plex / acquaintance-constraint utilities."""

import pytest

from repro.graph import (
    SocialGraph,
    greedy_max_kplex,
    is_kplex,
    maximal_kplexes,
    non_neighbor_counts,
    violates,
)


def complete_graph(n: int) -> SocialGraph:
    graph = SocialGraph(vertices=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v, 1.0)
    return graph


class TestNonNeighborCounts:
    def test_clique_has_zero_strangers(self):
        graph = complete_graph(4)
        counts = non_neighbor_counts(graph, [0, 1, 2, 3])
        assert all(c == 0 for c in counts.values())

    def test_star_counts(self, star_graph):
        counts = non_neighbor_counts(star_graph, ["q", "a", "b", "c"])
        assert counts["q"] == 0
        assert counts["a"] == 2
        assert counts["b"] == 2

    def test_single_member(self, star_graph):
        assert non_neighbor_counts(star_graph, ["q"]) == {"q": 0}


class TestIsKplex:
    def test_clique_is_0_feasible(self):
        assert is_kplex(complete_graph(5), range(5), 0)

    def test_star_requires_large_k(self, star_graph):
        members = ["q", "a", "b", "c"]
        assert not is_kplex(star_graph, members, 1)
        assert is_kplex(star_graph, members, 2)

    def test_paper_example_group(self, toy_dataset):
        graph = toy_dataset.graph
        # {v2, v3, v4, v7}: v2 and v3 are strangers, everyone else connected.
        assert is_kplex(graph, ["v2", "v3", "v4", "v7"], 1)
        assert not is_kplex(graph, ["v2", "v3", "v4", "v7"], 0)
        # {v2, v3, v6, v7} is infeasible even for k = 1 (v3 has two strangers).
        assert not is_kplex(graph, ["v2", "v3", "v6", "v7"], 1)

    def test_violates_lists_offenders(self, toy_dataset):
        offenders = violates(toy_dataset.graph, ["v2", "v3", "v6", "v7"], 1)
        assert offenders == ["v3"]

    def test_violates_empty_when_feasible(self, toy_dataset):
        assert violates(toy_dataset.graph, ["v2", "v4", "v6", "v7"], 1) == []


class TestGreedyMaxKplex:
    def test_complete_graph_returns_everything(self):
        graph = complete_graph(6)
        result = greedy_max_kplex(graph, k=0)
        assert result == set(range(6))

    def test_respects_constraint(self, toy_dataset):
        graph = toy_dataset.graph
        for k in (0, 1, 2):
            result = greedy_max_kplex(graph, k)
            assert is_kplex(graph, result, k)

    def test_max_size_cap(self):
        graph = complete_graph(8)
        result = greedy_max_kplex(graph, k=0, max_size=3)
        assert len(result) == 3

    def test_seed_vertex_respected(self, toy_dataset):
        result = greedy_max_kplex(toy_dataset.graph, k=1, seed_vertex="v8")
        assert "v8" in result

    def test_empty_graph(self):
        assert greedy_max_kplex(SocialGraph(), k=1) == set()


class TestMaximalKplexes:
    def test_triangle_single_maximal_clique(self, triangle_graph):
        result = maximal_kplexes(triangle_graph, k=0)
        assert frozenset({"q", "a", "b"}) in result

    def test_all_results_feasible_and_maximal(self, toy_dataset):
        graph = toy_dataset.graph
        result = maximal_kplexes(graph, k=1, min_size=2)
        for group in result:
            assert is_kplex(graph, group, 1)
        for group in result:
            assert not any(group < other for other in result)

    def test_refuses_large_graphs(self):
        graph = complete_graph(20)
        with pytest.raises(ValueError):
            maximal_kplexes(graph, k=1)

    def test_min_size_filter(self, triangle_graph):
        result = maximal_kplexes(triangle_graph, k=0, min_size=3)
        assert all(len(group) >= 3 for group in result)
