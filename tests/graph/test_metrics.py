"""Unit tests for graph metrics."""

import math

import pytest

from repro.graph import (
    SocialGraph,
    average_clustering,
    average_degree,
    clustering_coefficient,
    community_social_network,
    connected_components,
    degree_histogram,
    density,
    largest_component,
    summarize,
)


def complete_graph(n: int) -> SocialGraph:
    graph = SocialGraph(vertices=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v, 1.0)
    return graph


class TestDegreeMetrics:
    def test_degree_histogram(self, star_graph):
        hist = degree_histogram(star_graph)
        assert hist == {4: 1, 1: 4}

    def test_average_degree_star(self, star_graph):
        assert average_degree(star_graph) == pytest.approx(2 * 4 / 5)

    def test_average_degree_empty(self):
        assert average_degree(SocialGraph()) == 0.0

    def test_density_complete_graph(self):
        assert density(complete_graph(5)) == pytest.approx(1.0)

    def test_density_small_graphs(self):
        assert density(SocialGraph(vertices=["a"])) == 0.0


class TestClustering:
    def test_clustering_of_triangle(self, triangle_graph):
        assert clustering_coefficient(triangle_graph, "q") == pytest.approx(1.0)

    def test_clustering_of_star_center(self, star_graph):
        assert clustering_coefficient(star_graph, "q") == 0.0

    def test_clustering_degree_below_two(self, star_graph):
        assert clustering_coefficient(star_graph, "a") == 0.0

    def test_average_clustering_complete(self):
        assert average_clustering(complete_graph(4)) == pytest.approx(1.0)

    def test_average_clustering_with_sample(self):
        graph = complete_graph(6)
        assert average_clustering(graph, sample=[0, 1]) == pytest.approx(1.0)

    def test_average_clustering_empty(self):
        assert average_clustering(SocialGraph()) == 0.0


class TestComponents:
    def test_single_component(self, triangle_graph):
        comps = connected_components(triangle_graph)
        assert len(comps) == 1
        assert comps[0] == {"q", "a", "b"}

    def test_multiple_components(self):
        graph = SocialGraph(vertices=["lonely"])
        graph.add_edge("a", "b", 1.0)
        graph.add_edge("c", "d", 1.0)
        comps = connected_components(graph)
        assert len(comps) == 3
        assert largest_component(graph) in ({"a", "b"}, {"c", "d"})

    def test_largest_component_empty_graph(self):
        assert largest_component(SocialGraph()) == set()


class TestSummary:
    def test_summary_fields(self, toy_dataset):
        summary = summarize(toy_dataset.graph)
        assert summary.vertex_count == 6
        assert summary.edge_count == 9
        assert summary.component_count == 1
        assert summary.largest_component_size == 6
        assert summary.max_degree == 5
        assert summary.min_edge_distance == 14.0
        assert summary.max_edge_distance == 29.0

    def test_summary_as_dict_round_trip(self, toy_dataset):
        summary = summarize(toy_dataset.graph)
        d = summary.as_dict()
        assert d["vertex_count"] == 6
        assert set(d) >= {"density", "average_degree", "average_clustering"}

    def test_summary_empty_graph(self):
        summary = summarize(SocialGraph())
        assert summary.vertex_count == 0
        assert math.isnan(summary.mean_edge_distance)

    def test_summary_samples_clustering_on_large_graph(self):
        graph = community_social_network(n_people=120, seed=3)
        summary = summarize(graph, clustering_sample=30)
        assert 0.0 <= summary.average_clustering <= 1.0
