"""Unit tests for the synthetic social-network generators."""

import math

import pytest

from repro.exceptions import GraphError
from repro.graph import (
    coauthorship_style_network,
    community_social_network,
    ensure_connected_to,
    erdos_renyi_network,
    interaction_to_distance,
    small_world_network,
)


class TestInteractionToDistance:
    def test_zero_frequency_maps_to_scale(self):
        assert interaction_to_distance(0.0, scale=30.0) == pytest.approx(30.0)

    def test_monotone_decreasing(self):
        distances = [interaction_to_distance(f) for f in (0, 1, 5, 20, 100)]
        assert distances == sorted(distances, reverse=True)

    def test_always_positive(self):
        assert interaction_to_distance(1e6) > 0

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            interaction_to_distance(-1.0)


class TestCommunityNetwork:
    def test_size_and_connectivity(self):
        graph = community_social_network(n_people=80, seed=1)
        assert graph.vertex_count == 80
        assert all(graph.degree(v) >= 1 for v in graph)

    def test_deterministic_with_seed(self):
        a = community_social_network(n_people=60, seed=5)
        b = community_social_network(n_people=60, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = community_social_network(n_people=60, seed=5)
        b = community_social_network(n_people=60, seed=6)
        assert a != b

    def test_positive_finite_distances(self):
        graph = community_social_network(n_people=60, seed=2)
        for _, _, d in graph.edges():
            assert 0 < d < math.inf

    def test_community_structure_denser_than_random(self):
        """Intra-community wiring should give substantially more edges per
        person than the sparse inter-community probability alone."""
        graph = community_social_network(n_people=100, seed=3)
        mean_degree = 2 * graph.edge_count / graph.vertex_count
        assert mean_degree > 3.0

    def test_too_small_population_rejected(self):
        with pytest.raises(GraphError):
            community_social_network(n_people=1)

    def test_invalid_community_count_rejected(self):
        with pytest.raises(GraphError):
            community_social_network(n_people=10, n_communities=0)


class TestCoauthorshipNetwork:
    def test_size(self):
        graph = coauthorship_style_network(n_people=400, seed=1)
        assert graph.vertex_count == 400

    def test_no_isolated_vertices(self):
        graph = coauthorship_style_network(n_people=300, seed=2)
        assert all(graph.degree(v) >= 1 for v in graph)

    def test_deterministic_with_seed(self):
        a = coauthorship_style_network(n_people=200, seed=9)
        b = coauthorship_style_network(n_people=200, seed=9)
        assert a == b

    def test_heavy_tail_degrees(self):
        """Preferential attachment should create hubs well above the mean degree."""
        graph = coauthorship_style_network(n_people=500, seed=4)
        degrees = [graph.degree(v) for v in graph]
        mean = sum(degrees) / len(degrees)
        assert max(degrees) > 2.5 * mean

    def test_scales_to_thousands(self):
        graph = coauthorship_style_network(n_people=3000, seed=7)
        assert graph.vertex_count == 3000
        assert graph.edge_count > 3000


class TestSmallWorldAndRandom:
    def test_small_world_degree(self):
        graph = small_world_network(n_people=50, nearest_neighbors=4, seed=1)
        assert graph.vertex_count == 50
        assert all(graph.degree(v) >= 1 for v in graph)

    def test_small_world_odd_neighbors_rejected(self):
        with pytest.raises(GraphError):
            small_world_network(n_people=20, nearest_neighbors=3)

    def test_erdos_renyi_density(self):
        graph = erdos_renyi_network(n_people=60, edge_prob=0.2, seed=1)
        expected = 0.2 * 60 * 59 / 2
        assert 0.5 * expected < graph.edge_count < 1.5 * expected

    def test_erdos_renyi_connects_isolated(self):
        graph = erdos_renyi_network(n_people=40, edge_prob=0.01, seed=1)
        assert all(graph.degree(v) >= 1 for v in graph)


class TestEnsureConnectedTo:
    def test_densifies_hub(self):
        graph = community_social_network(n_people=80, seed=11)
        ensure_connected_to(graph, hub=0, min_degree=20, seed=1)
        assert graph.degree(0) >= 20

    def test_no_change_when_already_dense(self):
        graph = community_social_network(n_people=80, seed=11)
        ensure_connected_to(graph, hub=0, min_degree=20, seed=1)
        edges_before = graph.edge_count
        ensure_connected_to(graph, hub=0, min_degree=5, seed=2)
        assert graph.edge_count == edges_before
