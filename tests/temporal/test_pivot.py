"""Unit tests for pivot time slots (Lemma 4 of the paper)."""

import pytest

from repro.exceptions import ScheduleError
from repro.temporal import (
    CalendarStore,
    Schedule,
    SlotRange,
    candidate_periods,
    feasible_members_for_pivot,
    pivot_slots,
    pivot_window,
    pivot_windows,
)


class TestPivotSlots:
    def test_pivot_ids_are_multiples_of_m(self):
        assert pivot_slots(horizon=12, activity_length=3) == [3, 6, 9, 12]
        assert pivot_slots(horizon=7, activity_length=3) == [3, 6]
        assert pivot_slots(horizon=10, activity_length=1) == list(range(1, 11))

    def test_activity_longer_than_horizon_rejected(self):
        with pytest.raises(ScheduleError):
            pivot_slots(horizon=2, activity_length=3)

    def test_invalid_activity_length(self):
        with pytest.raises(ScheduleError):
            pivot_slots(horizon=5, activity_length=0)

    def test_every_period_contains_exactly_one_pivot(self):
        """Lemma 4: any activity period of m consecutive slots contains exactly
        one pivot slot."""
        for horizon in (6, 7, 10, 13, 24):
            for m in (1, 2, 3, 4, 5):
                if m > horizon:
                    continue
                pivots = set(pivot_slots(horizon, m))
                for period in candidate_periods(horizon, m):
                    inside = [t for t in period if t in pivots]
                    assert len(inside) == 1, (horizon, m, period)

    def test_pivot_windows_cover_all_periods(self):
        """Every candidate period appears in the window of the pivot it contains."""
        for horizon in (6, 9, 11):
            for m in (2, 3, 4):
                windows = {w.pivot: w for w in pivot_windows(horizon, m)}
                for period in candidate_periods(horizon, m):
                    pivot = next(t for t in period if t % m == 0)
                    assert windows[pivot].window.contains_range(period)


class TestPivotWindow:
    def test_window_extent(self):
        w = pivot_window(pivot=6, activity_length=3, horizon=20)
        assert w.window == SlotRange(4, 8)

    def test_window_clipped_at_horizon(self):
        w = pivot_window(pivot=6, activity_length=3, horizon=7)
        assert w.window == SlotRange(4, 7)

    def test_non_pivot_slot_rejected(self):
        with pytest.raises(ScheduleError):
            pivot_window(pivot=5, activity_length=3, horizon=10)

    def test_periods_contain_the_pivot(self):
        w = pivot_window(pivot=6, activity_length=3, horizon=20)
        periods = w.periods()
        assert periods == [SlotRange(4, 6), SlotRange(5, 7), SlotRange(6, 8)]
        for period in periods:
            assert 6 in period


class TestFeasibleMembers:
    def make_store(self):
        cal = CalendarStore(9)
        cal.set("free", Schedule.always_available(9))
        cal.set("busy", Schedule.never_available(9))
        cal.set("edge", Schedule.from_string("OOO.OO.OO"))
        cal.set("pivot-only", Schedule.from_string("..O......"[:9]))
        return cal

    def test_always_available_is_feasible(self):
        cal = self.make_store()
        w = pivot_window(pivot=3, activity_length=3, horizon=9)
        members = feasible_members_for_pivot(cal, w, ["free", "busy"])
        assert members == {"free"}

    def test_member_needs_run_of_m_through_pivot(self):
        cal = self.make_store()
        w = pivot_window(pivot=3, activity_length=3, horizon=9)
        # "edge" is available 1-3 (run of 3 containing slot 3) -> feasible.
        # "pivot-only" is available only at slot 3 -> run too short.
        members = feasible_members_for_pivot(cal, w, ["edge", "pivot-only"])
        assert members == {"edge"}

    def test_member_not_available_at_pivot_is_excluded(self):
        cal = self.make_store()
        w = pivot_window(pivot=6, activity_length=3, horizon=9)
        # "edge" is busy at slot 7 but free at 5, 6; run containing 6 is [5, 6],
        # shorter than 3 -> excluded.
        members = feasible_members_for_pivot(cal, w, ["edge", "free"])
        assert members == {"free"}


class TestCandidatePeriods:
    def test_all_periods_enumerated(self):
        periods = candidate_periods(horizon=5, activity_length=3)
        assert periods == [SlotRange(1, 3), SlotRange(2, 4), SlotRange(3, 5)]

    def test_full_horizon_period(self):
        assert candidate_periods(horizon=4, activity_length=4) == [SlotRange(1, 4)]
