"""Unit tests for slot arithmetic and SlotRange."""

import pytest

from repro.exceptions import ScheduleError
from repro.temporal import SlotRange, day_of_slot, slot_label, slots_per_day


class TestSlotRange:
    def test_length_and_iteration(self):
        r = SlotRange(3, 6)
        assert len(r) == 4
        assert list(r) == [3, 4, 5, 6]

    def test_single_slot_range(self):
        r = SlotRange(5, 5)
        assert len(r) == 1
        assert 5 in r

    def test_membership(self):
        r = SlotRange(2, 4)
        assert 2 in r and 4 in r
        assert 1 not in r and 5 not in r
        assert "3" not in r

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ScheduleError):
            SlotRange(0, 3)
        with pytest.raises(ScheduleError):
            SlotRange(4, 3)

    def test_contains_range(self):
        assert SlotRange(1, 10).contains_range(SlotRange(3, 5))
        assert not SlotRange(3, 5).contains_range(SlotRange(1, 10))
        assert SlotRange(3, 5).contains_range(SlotRange(3, 5))

    def test_intersect(self):
        assert SlotRange(1, 5).intersect(SlotRange(4, 9)) == SlotRange(4, 5)
        assert SlotRange(1, 3).intersect(SlotRange(5, 7)) is None
        assert SlotRange(1, 5).intersect(SlotRange(1, 5)) == SlotRange(1, 5)

    def test_shift(self):
        assert SlotRange(2, 4).shift(3) == SlotRange(5, 7)

    def test_windows(self):
        assert SlotRange(1, 4).windows(2) == [SlotRange(1, 2), SlotRange(2, 3), SlotRange(3, 4)]
        assert SlotRange(1, 3).windows(3) == [SlotRange(1, 3)]
        assert SlotRange(1, 2).windows(3) == []

    def test_windows_invalid_length(self):
        with pytest.raises(ScheduleError):
            SlotRange(1, 4).windows(0)

    def test_ordering_and_tuple(self):
        assert SlotRange(1, 2) < SlotRange(2, 3)
        assert SlotRange(3, 6).as_tuple() == (3, 6)


class TestSlotHelpers:
    def test_slots_per_day(self):
        assert slots_per_day(30) == 48
        assert slots_per_day(60) == 24
        assert slots_per_day(15) == 96

    def test_slots_per_day_invalid(self):
        with pytest.raises(ScheduleError):
            slots_per_day(7)
        with pytest.raises(ScheduleError):
            slots_per_day(0)

    def test_day_of_slot(self):
        assert day_of_slot(1, per_day=48) == 1
        assert day_of_slot(48, per_day=48) == 1
        assert day_of_slot(49, per_day=48) == 2

    def test_day_of_slot_invalid(self):
        with pytest.raises(ScheduleError):
            day_of_slot(0)

    def test_slot_label(self):
        assert slot_label(1) == "day 1 00:00-00:30"
        assert slot_label(48) == "day 1 23:30-24:00"
        assert slot_label(49) == "day 2 00:00-00:30"
        assert slot_label(20) == "day 1 09:30-10:00"
