"""Unit tests for the schedule generators."""

import pytest

from repro.exceptions import ScheduleError
from repro.temporal import (
    CalendarStore,
    Schedule,
    day_structured_schedule,
    generate_calendar_store,
    random_schedule,
    resample_calendar_store,
)


class TestRandomSchedule:
    def test_horizon_respected(self):
        s = random_schedule(20, availability=0.5, seed=1)
        assert s.horizon == 20

    def test_availability_extremes(self):
        assert random_schedule(30, availability=0.0, seed=1).available_count() == 0
        assert random_schedule(30, availability=1.0, seed=1).available_count() == 30

    def test_invalid_availability(self):
        with pytest.raises(ScheduleError):
            random_schedule(10, availability=1.5)

    def test_deterministic_with_seed(self):
        assert random_schedule(40, seed=7) == random_schedule(40, seed=7)


class TestDayStructuredSchedule:
    def test_horizon_is_days_times_slots(self):
        s = day_structured_schedule(days=3, slots_per_day=48, seed=1)
        assert s.horizon == 144

    def test_invalid_days(self):
        with pytest.raises(ScheduleError):
            day_structured_schedule(days=0)

    def test_evenings_freer_than_nights(self):
        """Aggregate availability in the evening band should exceed the night
        band across many sampled days."""
        s = day_structured_schedule(days=30, slots_per_day=48, seed=3)
        night, evening = 0, 0
        for day in range(30):
            base = day * 48
            night += sum(1 for i in range(0, 16) if s.is_available(base + i + 1))
            evening += sum(1 for i in range(36, 48) if s.is_available(base + i + 1))
        assert evening > night

    def test_deterministic_with_seed(self):
        a = day_structured_schedule(days=2, seed=11)
        b = day_structured_schedule(days=2, seed=11)
        assert a == b


class TestGenerateCalendarStore:
    def test_population_and_horizon(self):
        store = generate_calendar_store(range(10), days=2, slots_per_day=24, seed=5)
        assert len(store) == 10
        assert store.horizon == 48

    def test_deterministic_with_seed(self):
        a = generate_calendar_store(range(5), days=1, seed=9)
        b = generate_calendar_store(range(5), days=1, seed=9)
        for person in range(5):
            assert a.get(person) == b.get(person)

    def test_people_have_varied_availability(self):
        store = generate_calendar_store(range(30), days=1, seed=2)
        ratios = {round(store.get(p).availability_ratio(), 3) for p in range(30)}
        assert len(ratios) > 5


class TestResampleCalendarStore:
    def test_resampled_population_and_horizon(self):
        source = generate_calendar_store(range(8), days=2, slots_per_day=12, seed=1)
        resampled = resample_calendar_store(range(20), source, days=3, slots_per_day=12, seed=2)
        assert len(resampled) == 20
        assert resampled.horizon == 36

    def test_resampling_only_uses_source_day_patterns(self):
        """Each resampled day must equal some (person, day) pattern of the source."""
        slots_per_day = 10
        source = generate_calendar_store(range(5), days=2, slots_per_day=slots_per_day, seed=3)
        source_patterns = set()
        for person in source.people():
            sched = source.get(person)
            for day in range(2):
                base = day * slots_per_day
                pattern = tuple(
                    sched.is_available(base + i) for i in range(1, slots_per_day + 1)
                )
                source_patterns.add(pattern)
        resampled = resample_calendar_store(range(6), source, days=2, slots_per_day=slots_per_day, seed=4)
        for person in range(6):
            sched = resampled.get(person)
            for day in range(2):
                base = day * slots_per_day
                pattern = tuple(
                    sched.is_available(base + i) for i in range(1, slots_per_day + 1)
                )
                assert pattern in source_patterns

    def test_empty_source_rejected(self):
        with pytest.raises(ScheduleError):
            resample_calendar_store(range(3), CalendarStore(10), days=1)

    def test_short_source_rejected(self):
        source = CalendarStore(5)
        source.set("x", Schedule(5, [1]))
        with pytest.raises(ScheduleError):
            resample_calendar_store(range(3), source, days=1, slots_per_day=10)
