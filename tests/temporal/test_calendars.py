"""Unit tests for the CalendarStore."""

import pytest

from repro.exceptions import ScheduleError
from repro.temporal import CalendarStore, Schedule, SlotRange


@pytest.fixture
def store():
    cal = CalendarStore(6)
    cal.set("alice", Schedule.from_string("OOOO.."))
    cal.set("bob", Schedule.from_string(".OOOO."))
    cal.set("carol", Schedule.from_string("..OOOO"))
    return cal


class TestBasics:
    def test_invalid_horizon(self):
        with pytest.raises(ScheduleError):
            CalendarStore(0)

    def test_set_and_get(self, store):
        assert store.get("alice").available_slots() == [1, 2, 3, 4]

    def test_len_contains_iter_people(self, store):
        assert len(store) == 3
        assert "alice" in store and "nobody" not in store
        assert set(iter(store)) == {"alice", "bob", "carol"}
        assert set(store.people()) == {"alice", "bob", "carol"}

    def test_unknown_person_is_never_available(self, store):
        sched = store.get("nobody")
        assert sched.available_count() == 0

    def test_mismatched_horizon_rejected(self, store):
        with pytest.raises(ScheduleError):
            store.set("dave", Schedule(5))

    def test_constructor_with_schedules(self):
        cal = CalendarStore(3, schedules={"x": Schedule(3, [1])})
        assert cal.is_available("x", 1)


class TestAvailabilityQueries:
    def test_is_available(self, store):
        assert store.is_available("alice", 1)
        assert not store.is_available("alice", 5)

    def test_is_available_range(self, store):
        assert store.is_available_range("bob", SlotRange(2, 5))
        assert not store.is_available_range("bob", SlotRange(1, 3))

    def test_joint_schedule(self, store):
        joint = store.joint_schedule(["alice", "bob", "carol"])
        assert joint.available_slots() == [3, 4]

    def test_joint_schedule_empty_group_is_always_available(self, store):
        assert store.joint_schedule([]).available_count() == 6

    def test_common_windows(self, store):
        assert store.common_windows(["alice", "bob", "carol"], 2) == [SlotRange(3, 4)]
        assert store.common_windows(["alice", "bob", "carol"], 3) == []

    def test_available_people(self, store):
        assert store.available_people(SlotRange(3, 4)) == {"alice", "bob", "carol"}
        assert store.available_people(SlotRange(1, 2)) == {"alice"}
        assert store.available_people(SlotRange(3, 4), candidates=["bob"]) == {"bob"}

    def test_availability_matrix(self, store):
        matrix = store.availability_matrix(["alice", "bob"])
        assert matrix["alice"] == [1, 2, 3, 4]
        assert matrix["bob"] == [2, 3, 4, 5]


class TestPersistence:
    def test_dict_round_trip(self, store):
        data = store.to_dict()
        back = CalendarStore.from_dict(data)
        assert back.horizon == 6
        assert back.get("alice").available_slots() == [1, 2, 3, 4]

    def test_json_round_trip(self, store, tmp_path):
        path = tmp_path / "calendars.json"
        store.write_json(path)
        back = CalendarStore.read_json(path)
        assert len(back) == 3
        assert back.get("carol").available_slots() == [3, 4, 5, 6]

    def test_dict_round_trip_with_int_ids(self):
        cal = CalendarStore(3)
        cal.set(7, Schedule(3, [2]))
        back = CalendarStore.from_dict(cal.to_dict(), vertex_type=int)
        assert back.is_available(7, 2)


class TestLazyCalendarStore:
    @pytest.fixture
    def lazy(self):
        """(store, calls) pair: ``calls`` records factory invocations."""
        from repro.temporal import LazyCalendarStore

        calls = []

        def factory(person):
            calls.append(person)
            return Schedule(6, [person % 6 + 1])

        return LazyCalendarStore(6, range(10), factory), calls

    def test_materialises_on_first_access_only(self, lazy):
        store, calls = lazy
        assert store.get(3).available_slots() == [4]
        assert store.get(3).available_slots() == [4]
        assert calls == [3]

    def test_population_surface(self, lazy):
        store, calls = lazy
        assert len(store) == 10
        assert 4 in store and 99 not in store
        assert store.people() == list(range(10))
        assert list(iter(store)) == list(range(10))
        assert calls == []  # surface queries touch no schedules

    def test_out_of_population_never_available(self, lazy):
        store, calls = lazy
        sched = store.get(99)
        assert sched.available_slots() == []
        assert calls == []

    def test_explicit_set_shadows_factory(self, lazy):
        store, calls = lazy
        store.set(5, Schedule.from_string("OOOOOO"))
        assert store.get(5).available_slots() == [1, 2, 3, 4, 5, 6]
        assert calls == []

    def test_factory_horizon_mismatch_rejected(self):
        from repro.temporal import LazyCalendarStore

        store = LazyCalendarStore(6, [0], lambda person: Schedule(4, [1]))
        with pytest.raises(ScheduleError):
            store.get(0)

    def test_pickle_drops_cache_and_rematerialises(self):
        import pickle

        from repro.datasets.scale import _person_schedule
        import functools

        from repro.temporal import LazyCalendarStore

        factory = functools.partial(_person_schedule, days=1, slots_per_day=6, seed=11)
        store = LazyCalendarStore(6, range(20), factory)
        before = store.get(7).available_slots()
        clone = pickle.loads(pickle.dumps(store))
        assert len(clone._schedules) == 0  # cache not shipped
        assert clone.get(7).available_slots() == before  # deterministic re-materialisation

    def test_to_dict_materialises_population(self, lazy):
        store, calls = lazy
        payload = store.to_dict()
        assert payload["horizon"] == 6
        assert len(payload["schedules"]) == 10
        assert sorted(calls) == list(range(10))

    def test_available_people_defaults_to_population(self, lazy):
        store, calls = lazy
        avail = store.available_people(SlotRange(1, 6))
        assert avail <= set(range(10))
        # candidates restricts materialisation to the pool handed in
        before = calls.copy()
        assert store.available_people(SlotRange(1, 6), candidates=[0, 1]) <= {0, 1}
        assert set(calls) == set(before)
