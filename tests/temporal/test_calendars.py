"""Unit tests for the CalendarStore."""

import pytest

from repro.exceptions import ScheduleError
from repro.temporal import CalendarStore, Schedule, SlotRange


@pytest.fixture
def store():
    cal = CalendarStore(6)
    cal.set("alice", Schedule.from_string("OOOO.."))
    cal.set("bob", Schedule.from_string(".OOOO."))
    cal.set("carol", Schedule.from_string("..OOOO"))
    return cal


class TestBasics:
    def test_invalid_horizon(self):
        with pytest.raises(ScheduleError):
            CalendarStore(0)

    def test_set_and_get(self, store):
        assert store.get("alice").available_slots() == [1, 2, 3, 4]

    def test_len_contains_iter_people(self, store):
        assert len(store) == 3
        assert "alice" in store and "nobody" not in store
        assert set(iter(store)) == {"alice", "bob", "carol"}
        assert set(store.people()) == {"alice", "bob", "carol"}

    def test_unknown_person_is_never_available(self, store):
        sched = store.get("nobody")
        assert sched.available_count() == 0

    def test_mismatched_horizon_rejected(self, store):
        with pytest.raises(ScheduleError):
            store.set("dave", Schedule(5))

    def test_constructor_with_schedules(self):
        cal = CalendarStore(3, schedules={"x": Schedule(3, [1])})
        assert cal.is_available("x", 1)


class TestAvailabilityQueries:
    def test_is_available(self, store):
        assert store.is_available("alice", 1)
        assert not store.is_available("alice", 5)

    def test_is_available_range(self, store):
        assert store.is_available_range("bob", SlotRange(2, 5))
        assert not store.is_available_range("bob", SlotRange(1, 3))

    def test_joint_schedule(self, store):
        joint = store.joint_schedule(["alice", "bob", "carol"])
        assert joint.available_slots() == [3, 4]

    def test_joint_schedule_empty_group_is_always_available(self, store):
        assert store.joint_schedule([]).available_count() == 6

    def test_common_windows(self, store):
        assert store.common_windows(["alice", "bob", "carol"], 2) == [SlotRange(3, 4)]
        assert store.common_windows(["alice", "bob", "carol"], 3) == []

    def test_available_people(self, store):
        assert store.available_people(SlotRange(3, 4)) == {"alice", "bob", "carol"}
        assert store.available_people(SlotRange(1, 2)) == {"alice"}
        assert store.available_people(SlotRange(3, 4), candidates=["bob"]) == {"bob"}

    def test_availability_matrix(self, store):
        matrix = store.availability_matrix(["alice", "bob"])
        assert matrix["alice"] == [1, 2, 3, 4]
        assert matrix["bob"] == [2, 3, 4, 5]


class TestPersistence:
    def test_dict_round_trip(self, store):
        data = store.to_dict()
        back = CalendarStore.from_dict(data)
        assert back.horizon == 6
        assert back.get("alice").available_slots() == [1, 2, 3, 4]

    def test_json_round_trip(self, store, tmp_path):
        path = tmp_path / "calendars.json"
        store.write_json(path)
        back = CalendarStore.read_json(path)
        assert len(back) == 3
        assert back.get("carol").available_slots() == [3, 4, 5, 6]

    def test_dict_round_trip_with_int_ids(self):
        cal = CalendarStore(3)
        cal.set(7, Schedule(3, [2]))
        back = CalendarStore.from_dict(cal.to_dict(), vertex_type=int)
        assert back.is_available(7, 2)
