"""Unit tests for per-person availability schedules."""

import pytest

from repro.exceptions import ScheduleError
from repro.temporal import Schedule, SlotRange


class TestConstruction:
    def test_empty_schedule(self):
        s = Schedule(5)
        assert s.available_slots() == []
        assert s.available_count() == 0
        assert s.busy_slots() == [1, 2, 3, 4, 5]

    def test_from_slot_list(self):
        s = Schedule(6, available=[2, 4, 5])
        assert s.available_slots() == [2, 4, 5]

    def test_invalid_horizon(self):
        with pytest.raises(ScheduleError):
            Schedule(0)

    def test_slot_out_of_range(self):
        s = Schedule(4)
        with pytest.raises(ScheduleError):
            s.set_available(5)
        with pytest.raises(ScheduleError):
            s.is_available(0)

    def test_from_string_paper_notation(self):
        s = Schedule.from_string(".OO.OO.")
        assert s.horizon == 7
        assert s.available_slots() == [2, 3, 5, 6]

    def test_from_string_binary_notation(self):
        s = Schedule.from_string("0110")
        assert s.available_slots() == [2, 3]

    def test_from_string_invalid_character(self):
        with pytest.raises(ScheduleError):
            Schedule.from_string("O?O")

    def test_from_string_empty(self):
        with pytest.raises(ScheduleError):
            Schedule.from_string("   ")

    def test_always_and_never_available(self):
        assert Schedule.always_available(4).available_count() == 4
        assert Schedule.never_available(4).available_count() == 0

    def test_from_bitmask_masks_extra_bits(self):
        s = Schedule.from_bitmask(3, 0b11111)
        assert s.available_slots() == [1, 2, 3]


class TestAvailabilityQueries:
    def test_is_available(self):
        s = Schedule(5, available=[1, 3])
        assert s.is_available(1)
        assert not s.is_available(2)

    def test_is_available_range(self):
        s = Schedule(6, available=[2, 3, 4])
        assert s.is_available_range(SlotRange(2, 4))
        assert s.is_available_range(SlotRange(3, 3))
        assert not s.is_available_range(SlotRange(1, 3))
        assert not s.is_available_range(SlotRange(4, 6))

    def test_is_available_range_past_horizon(self):
        s = Schedule.always_available(4)
        assert not s.is_available_range(SlotRange(3, 5))

    def test_availability_ratio(self):
        s = Schedule(4, available=[1, 2])
        assert s.availability_ratio() == pytest.approx(0.5)

    def test_set_busy(self):
        s = Schedule(4, available=[1, 2, 3])
        s.set_busy(2)
        assert s.available_slots() == [1, 3]


class TestRuns:
    def test_available_runs(self):
        s = Schedule.from_string("OO.OOO.O")
        assert s.available_runs() == [SlotRange(1, 2), SlotRange(4, 6), SlotRange(8, 8)]

    def test_runs_empty_schedule(self):
        assert Schedule(5).available_runs() == []

    def test_runs_full_schedule(self):
        assert Schedule.always_available(5).available_runs() == [SlotRange(1, 5)]

    def test_run_containing(self):
        s = Schedule.from_string("OO.OOO.O")
        assert s.run_containing(5) == SlotRange(4, 6)
        assert s.run_containing(1) == SlotRange(1, 2)
        assert s.run_containing(3) is None

    def test_has_window(self):
        s = Schedule.from_string("OO.OOO.O")
        assert s.has_window(3)
        assert not s.has_window(4)
        assert s.has_window(2, within=SlotRange(1, 2))
        assert not s.has_window(3, within=SlotRange(1, 3))

    def test_has_window_invalid_length(self):
        with pytest.raises(ScheduleError):
            Schedule(3).has_window(0)

    def test_free_windows(self):
        s = Schedule.from_string("OOOO")
        assert s.free_windows(3) == [SlotRange(1, 3), SlotRange(2, 4)]
        assert s.free_windows(3, within=SlotRange(2, 4)) == [SlotRange(2, 4)]

    def test_free_windows_fragmented(self):
        s = Schedule.from_string("OO.OO")
        assert s.free_windows(2) == [SlotRange(1, 2), SlotRange(4, 5)]
        assert s.free_windows(3) == []


class TestCombination:
    def test_intersect(self):
        a = Schedule.from_string("OOO..")
        b = Schedule.from_string(".OOO.")
        assert a.intersect(b).available_slots() == [2, 3]

    def test_union(self):
        a = Schedule.from_string("OO...")
        b = Schedule.from_string("...OO")
        assert a.union(b).available_slots() == [1, 2, 4, 5]

    def test_mismatched_horizons_rejected(self):
        with pytest.raises(ScheduleError):
            Schedule(3).intersect(Schedule(4))
        with pytest.raises(ScheduleError):
            Schedule(3).union(Schedule(4))

    def test_restricted(self):
        s = Schedule.always_available(6)
        restricted = s.restricted(SlotRange(2, 4))
        assert restricted.available_slots() == [2, 3, 4]

    def test_copy_independent(self):
        s = Schedule(4, available=[1])
        clone = s.copy()
        clone.set_available(2)
        assert s.available_slots() == [1]

    def test_equality_and_hash(self):
        a = Schedule(4, available=[1, 3])
        b = Schedule(4, available=[1, 3])
        c = Schedule(4, available=[2])
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != "not a schedule"

    def test_iteration(self):
        assert list(Schedule(4, available=[2, 4])) == [2, 4]
