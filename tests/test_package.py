"""Package-level tests: public API surface, exceptions hierarchy, docstrings."""

import importlib
import inspect

import pytest

import repro
from repro import exceptions


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"{name} listed in __all__ but missing"

    def test_key_entry_points_exposed(self):
        assert callable(repro.ActivityPlanner)
        assert callable(repro.SGSelect)
        assert callable(repro.STGSelect)
        assert callable(repro.SocialGraph)
        assert callable(repro.CalendarStore)

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.graph",
            "repro.temporal",
            "repro.core",
            "repro.datasets",
            "repro.experiments",
            "repro.cli",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core.sgselect",
            "repro.core.stgselect",
            "repro.core.baseline",
            "repro.core.pruning",
            "repro.core.ordering",
            "repro.core.heuristics",
            "repro.graph.social_graph",
            "repro.graph.distance",
            "repro.temporal.schedule",
            "repro.temporal.pivot",
        ],
    )
    def test_public_classes_and_functions_are_documented(self, module_name):
        """Every public item in the core modules carries a docstring."""
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} has no module docstring"
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{module_name}.{name} has no docstring"


class TestExceptions:
    def test_hierarchy(self):
        assert issubclass(exceptions.GraphError, exceptions.ReproError)
        assert issubclass(exceptions.ScheduleError, exceptions.ReproError)
        assert issubclass(exceptions.QueryError, exceptions.ReproError)
        assert issubclass(exceptions.InfeasibleQueryError, exceptions.QueryError)
        assert issubclass(exceptions.SolverError, exceptions.ReproError)
        assert issubclass(exceptions.VertexNotFoundError, exceptions.GraphError)
        assert issubclass(exceptions.EdgeNotFoundError, exceptions.GraphError)

    def test_vertex_not_found_carries_vertex(self):
        err = exceptions.VertexNotFoundError("bob")
        assert err.vertex == "bob"
        assert "bob" in str(err)

    def test_edge_not_found_carries_endpoints(self):
        err = exceptions.EdgeNotFoundError("a", "b")
        assert (err.u, err.v) == ("a", "b")

    def test_single_except_clause_catches_everything(self, star_graph):
        from repro.core import SGSelect, SGQuery

        with pytest.raises(exceptions.ReproError):
            SGSelect(star_graph).solve(SGQuery("missing", 2, 1, 0))
        with pytest.raises(exceptions.ReproError):
            SGQuery("q", 0, 1, 0)


class TestMainModule:
    def test_python_dash_m_invocation(self):
        import subprocess
        import sys

        completed = subprocess.run(
            [sys.executable, "-m", "repro", "--help"], capture_output=True, text=True
        )
        assert completed.returncode == 0
        assert "Social-Temporal Group Query" in completed.stdout
