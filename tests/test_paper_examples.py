"""End-to-end tests pinning the paper's worked examples (Appendix A).

These are the strongest regression anchors in the suite: the toy instance of
Figure 3 is fully specified in the paper, and Examples 2 and 3 trace SGSelect
and STGSelect on it by hand, giving exact optimal groups, total distances and
the selected activity period.
"""

import pytest

from repro import ActivityPlanner, SGQuery, STGQuery
from repro.core import (
    BaselineSGQ,
    BaselineSTGQ,
    IPSolver,
    SGSelect,
    STGSelect,
    observed_acquaintance,
)
from repro.datasets import MOVIE_INITIATOR, TOY_INITIATOR
from repro.temporal import SlotRange

from tests.conftest import HAVE_SCIPY


class TestExample2SGQ:
    """Example 2: SGQ(p=4, s=1, k=1) issued by v7 on the Figure-3 network."""

    def test_optimal_group_and_distance(self, toy_dataset):
        result = SGSelect(toy_dataset.graph).solve(SGQuery(TOY_INITIATOR, 4, 1, 1))
        assert result.members == frozenset({"v2", "v3", "v4", "v7"})
        assert result.total_distance == pytest.approx(62.0)

    def test_first_feasible_solution_is_also_valid(self, toy_dataset):
        """The trace's first feasible solution {v2, v4, v6, v7} is feasible but
        sub-optimal — it must be beaten by the final answer."""
        from repro.graph import is_kplex

        assert is_kplex(toy_dataset.graph, ["v2", "v4", "v6", "v7"], 1)
        total_first = 17.0 + 27.0 + 23.0
        result = SGSelect(toy_dataset.graph).solve(SGQuery(TOY_INITIATOR, 4, 1, 1))
        assert result.total_distance < total_first

    def test_infeasible_candidate_group_rejected(self, toy_dataset):
        """{v2, v3, v6, v7} is the infeasible group the access ordering avoids."""
        from repro.graph import is_kplex

        assert not is_kplex(toy_dataset.graph, ["v2", "v3", "v6", "v7"], 1)

    def test_all_solvers_agree(self, toy_dataset):
        query = SGQuery(TOY_INITIATOR, 4, 1, 1)
        results = [
            SGSelect(toy_dataset.graph).solve(query),
            BaselineSGQ(toy_dataset.graph).solve(query),
        ]
        if HAVE_SCIPY:  # the MILP cross-checks need scipy/numpy
            results += [
                IPSolver().solve_sgq(toy_dataset.graph, query),
                IPSolver(formulation="full").solve_sgq(toy_dataset.graph, query),
                IPSolver(backend="branch-bound").solve_sgq(toy_dataset.graph, query),
            ]
        for result in results:
            assert result.members == frozenset({"v2", "v3", "v4", "v7"})
            assert result.total_distance == pytest.approx(62.0)


class TestExample3STGQ:
    """Example 3: STGQ(p=4, s=1, k=1, m=3) on the Figure-3 network."""

    def test_optimal_group_and_period(self, toy_dataset):
        result = STGSelect(toy_dataset.graph, toy_dataset.calendars).solve(
            STGQuery(TOY_INITIATOR, 4, 1, 1, 3)
        )
        assert result.members == frozenset({"v2", "v4", "v6", "v7"})
        # The paper reports the activity period [ts2, ts4]; [ts3, ts5] is the
        # other equally valid placement inside the shared run.
        assert result.period in (SlotRange(2, 4), SlotRange(3, 5))
        assert result.shared_slots.contains_range(result.period)

    def test_pivot_ts3_is_the_anchor(self, toy_dataset):
        """The worked trace finds the only feasible group at pivot ts3 and
        nothing at pivot ts6."""
        result = STGSelect(toy_dataset.graph, toy_dataset.calendars).solve(
            STGQuery(TOY_INITIATOR, 4, 1, 1, 3)
        )
        assert result.pivot == 3

    def test_total_distance_is_sum_of_member_distances(self, toy_dataset):
        result = STGSelect(toy_dataset.graph, toy_dataset.calendars).solve(
            STGQuery(TOY_INITIATOR, 4, 1, 1, 3)
        )
        assert result.total_distance == pytest.approx(17.0 + 27.0 + 23.0)

    def test_all_solvers_agree(self, toy_dataset):
        query = STGQuery(TOY_INITIATOR, 4, 1, 1, 3)
        results = [
            STGSelect(toy_dataset.graph, toy_dataset.calendars).solve(query),
            BaselineSTGQ(toy_dataset.graph, toy_dataset.calendars).solve(query),
            BaselineSTGQ(toy_dataset.graph, toy_dataset.calendars, inner="bruteforce").solve(query),
        ]
        if HAVE_SCIPY:  # the MILP cross-check needs scipy/numpy
            results.append(
                IPSolver().solve_stgq(toy_dataset.graph, toy_dataset.calendars, query)
            )
        for result in results:
            assert result.members == frozenset({"v2", "v4", "v6", "v7"})
            assert result.total_distance == pytest.approx(67.0)


class TestExample1MovieNetwork:
    """Example 1 (Figure 2): the Casey Affleck celebrity network.

    The exact edge weights of Figure 2 are not recoverable from the paper
    text, so these tests assert the *structural* facts of the example rather
    than literal distances: the k = 0 query must return the mutually
    acquainted trio rather than the three closest friends.
    """

    def test_ten_candidate_groups_for_p4_s1(self, movie_dataset):
        result = BaselineSGQ(movie_dataset.graph).solve(SGQuery(MOVIE_INITIATOR, 4, 1, 4))
        assert result.stats.nodes_expanded == 10  # C(5, 3) as in the paper

    def test_k0_returns_the_clique(self, movie_dataset):
        planner = ActivityPlanner(movie_dataset.graph, movie_dataset.calendars)
        result = planner.find_group(
            initiator=MOVIE_INITIATOR, group_size=4, radius=1, acquaintance=0
        )
        assert result.members == frozenset(
            {"casey_affleck", "george_clooney", "brad_pitt", "julia_roberts"}
        )

    def test_unconstrained_query_prefers_closest_but_looser_group(self, movie_dataset):
        planner = ActivityPlanner(movie_dataset.graph, movie_dataset.calendars)
        loose = planner.find_group(
            initiator=MOVIE_INITIATOR, group_size=4, radius=1, acquaintance=3
        )
        tight = planner.find_group(
            initiator=MOVIE_INITIATOR, group_size=4, radius=1, acquaintance=0
        )
        assert loose.total_distance <= tight.total_distance
        assert observed_acquaintance(movie_dataset.graph, loose.members) > 0

    def test_radius_two_admits_friends_of_friends(self, movie_dataset):
        planner = ActivityPlanner(movie_dataset.graph, movie_dataset.calendars)
        result = planner.find_group(
            initiator=MOVIE_INITIATOR, group_size=6, radius=2, acquaintance=2
        )
        assert result.feasible
        two_hop_only = {"angelina_jolie", "matt_damon"}
        assert result.members & two_hop_only, "a friend-of-friend should be invited"

    def test_temporal_query_returns_valid_period(self, movie_dataset):
        planner = ActivityPlanner(movie_dataset.graph, movie_dataset.calendars)
        query = STGQuery(MOVIE_INITIATOR, 4, 2, 2, 3)
        result = planner.find_group_and_time(
            initiator=MOVIE_INITIATOR,
            group_size=4,
            activity_length=3,
            radius=2,
            acquaintance=2,
        )
        assert result.feasible
        assert planner.verify(query, result).ok
