"""Shared fixtures for the test-suite.

The fixtures intentionally build *small* instances: the correctness of the
algorithms is established by cross-checking solvers against each other and
against brute force, which is only affordable on small graphs.  Larger,
generator-produced datasets are exercised by the integration tests and the
benchmarks.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets import load_movie_network, load_toy_example
from repro.graph import SocialGraph
from repro.temporal import CalendarStore, Schedule

try:  # scipy (and the numpy it brings) is optional: the MILP comparison
    import scipy  # noqa: F401

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    HAVE_SCIPY = False

#: Marker for tests that exercise the scipy/numpy-backed IP solvers; the
#: no-numpy CI leg runs the suite without scipy and these must skip cleanly.
requires_scipy = pytest.mark.skipif(not HAVE_SCIPY, reason="scipy not installed")


@pytest.fixture
def toy_dataset():
    """The paper's Figure-3 worked example (Examples 2 and 3)."""
    return load_toy_example()


@pytest.fixture
def movie_dataset():
    """The paper's Figure-2 celebrity network (Example 1, approximate weights)."""
    return load_movie_network()


@pytest.fixture
def triangle_graph():
    """Initiator ``q`` with two mutually acquainted friends."""
    graph = SocialGraph()
    graph.add_edge("q", "a", 1.0)
    graph.add_edge("q", "b", 2.0)
    graph.add_edge("a", "b", 1.5)
    return graph


@pytest.fixture
def star_graph():
    """Initiator ``q`` with four friends who do not know each other."""
    graph = SocialGraph()
    for name, dist in [("a", 1.0), ("b", 2.0), ("c", 3.0), ("d", 4.0)]:
        graph.add_edge("q", name, dist)
    return graph


@pytest.fixture
def two_hop_graph():
    """A path ``q - a - b`` plus a direct expensive edge ``q - b``.

    The minimum-distance path from ``q`` to ``b`` uses two edges (1 + 1 = 2),
    while the one-edge path costs 10 — the case the paper uses to motivate
    the i-edge minimum distance.
    """
    graph = SocialGraph()
    graph.add_edge("q", "a", 1.0)
    graph.add_edge("a", "b", 1.0)
    graph.add_edge("q", "b", 10.0)
    return graph


def make_random_graph(seed: int, n: int = 10, edge_prob: float = 0.4) -> SocialGraph:
    """Seeded random graph with integer distances (shared by several tests)."""
    rng = random.Random(seed)
    graph = SocialGraph(vertices=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < edge_prob:
                graph.add_edge(u, v, rng.randint(1, 20))
    return graph


def make_random_calendars(seed: int, people, horizon: int = 10, availability: float = 0.6) -> CalendarStore:
    """Seeded random calendar store (shared by several tests)."""
    rng = random.Random(seed)
    store = CalendarStore(horizon)
    for person in people:
        free = [t for t in range(1, horizon + 1) if rng.random() < availability]
        store.set(person, Schedule(horizon, free))
    return store


@pytest.fixture
def random_graph_factory():
    """Factory fixture returning :func:`make_random_graph`."""
    return make_random_graph


@pytest.fixture
def random_calendar_factory():
    """Factory fixture returning :func:`make_random_calendars`."""
    return make_random_calendars
