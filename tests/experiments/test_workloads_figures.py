"""Tests for workload construction, the figure runners (smoke scale) and the
ablation harness."""

import pytest

from repro.core import SGQuery, STGQuery
from repro.exceptions import QueryError
from repro.experiments import (
    ExperimentScale,
    ego_size,
    format_ablation,
    generate_query_workload,
    load_workload,
    pick_initiator,
    run_figure,
    run_sg_ablation,
    run_stg_ablation,
    save_workload,
    workload,
)


class TestWorkloads:
    def test_small_workload_uses_community_generator(self):
        dataset = workload(network_size=80, schedule_days=1, seed=7)
        assert dataset.graph.vertex_count == 80
        assert dataset.name == "real-194"

    def test_large_workload_uses_coauthorship_generator(self):
        dataset = workload(network_size=600, schedule_days=1, seed=7)
        assert dataset.graph.vertex_count == 600
        assert dataset.name.startswith("coauthorship")

    def test_workload_is_memoised(self):
        a = workload(network_size=80, schedule_days=1, seed=7)
        b = workload(network_size=80, schedule_days=1, seed=7)
        assert a is b

    def test_ego_size(self):
        dataset = workload(network_size=80, schedule_days=1, seed=7)
        initiator = dataset.metadata["initiator"]
        assert ego_size(dataset, initiator, 1) == dataset.graph.degree(initiator)
        assert ego_size(dataset, initiator, 2) >= ego_size(dataset, initiator, 1)

    def test_pick_initiator_respects_bounds(self):
        dataset = workload(network_size=80, schedule_days=1, seed=7)
        initiator = pick_initiator(dataset, radius=1, min_candidates=5, max_candidates=30)
        assert 5 <= ego_size(dataset, initiator, 1) <= 30

    def test_pick_initiator_falls_back_to_largest_ego(self):
        dataset = workload(network_size=80, schedule_days=1, seed=7)
        initiator = pick_initiator(dataset, radius=1, min_candidates=10_000)
        degrees = [dataset.graph.degree(v) for v in dataset.people]
        assert dataset.graph.degree(initiator) == max(degrees)


class TestWorkloadSaveReplay:
    def test_roundtrip_preserves_queries_and_order(self, tmp_path):
        dataset = workload(network_size=60, schedule_days=1, seed=7)
        queries = generate_query_workload(dataset, 40, skew=1.0, stg_fraction=0.4, seed=3)
        path = tmp_path / "trace.jsonl"
        assert save_workload(queries, path) == 40
        loaded = load_workload(path)
        assert loaded == queries  # exact queries, exact order
        assert any(isinstance(q, STGQuery) for q in loaded)
        assert any(isinstance(q, SGQuery) for q in loaded)

    def test_trace_is_jsonl_request_schema(self, tmp_path):
        # The trace must be byte-compatible with the serving request codec:
        # a saved line can be piped straight into `stgq serve --jsonl`.
        import json

        from repro.service.codec import query_from_request

        dataset = workload(network_size=60, schedule_days=1, seed=7)
        queries = generate_query_workload(dataset, 5, seed=1)
        path = tmp_path / "trace.jsonl"
        save_workload(queries, path)
        lines = path.read_text().splitlines()
        assert len(lines) == 5
        for line, query in zip(lines, queries):
            assert query_from_request(json.loads(line)) == query

    def test_blank_lines_skipped_and_errors_carry_line_numbers(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"initiator": 1, "group_size": 3}\n\nnot json\n')
        with pytest.raises(QueryError) as excinfo:
            load_workload(path)
        assert ":3:" in str(excinfo.value)
        path.write_text('{"initiator": 1, "group_size": 3}\n\n{"group_size": 3}\n')
        with pytest.raises(QueryError) as excinfo:
            load_workload(path)
        assert ":3:" in str(excinfo.value)
        path.write_text('{"initiator": 1, "group_size": 3}\n\n')
        assert len(load_workload(path)) == 1


@pytest.mark.parametrize("figure", ["1a", "1b", "1c", "1e", "1f", "1g", "1h"])
def test_figure_runners_smoke(figure):
    """Every panel runner completes at smoke scale and yields measurements for
    each sweep value."""
    series = run_figure(figure, scale=ExperimentScale.SMOKE)
    assert series.figure == figure
    assert len(series.points) >= 2
    for point in series.points:
        assert point.measurements or point.extra
    # Performance panels must include the paper's protagonist algorithm.
    if figure in ("1a", "1b", "1c"):
        assert "SGSelect" in series.algorithms()
        assert "Baseline" in series.algorithms()
    if figure in ("1e", "1f"):
        assert "STGSelect" in series.algorithms()
    if figure in ("1g", "1h"):
        for point in series.points:
            assert "stgarrange_k" in point.extra


def test_figure_runner_unknown_panel():
    with pytest.raises(KeyError):
        run_figure("9z")


class TestAblation:
    def test_sg_ablation_variants_agree_on_optimum(self):
        dataset = workload(network_size=80, schedule_days=1, seed=7)
        initiator = pick_initiator(dataset, radius=1, min_candidates=8, max_candidates=24)
        report = run_sg_ablation(dataset, initiator, group_size=4, radius=1, acquaintance=2)
        distances = {row.total_distance for row in report.rows if row.feasible}
        assert len(distances) <= 1  # every variant returns the same optimum
        assert {row.variant for row in report.rows} >= {"full", "no-distance-pruning"}
        text = format_ablation(report)
        assert "variant" in text and "full" in text

    def test_stg_ablation_includes_temporal_strategies(self):
        dataset = workload(network_size=80, schedule_days=1, seed=7)
        initiator = pick_initiator(dataset, radius=1, min_candidates=8, max_candidates=24)
        report = run_stg_ablation(
            dataset, initiator, group_size=3, radius=1, acquaintance=2, activity_length=2
        )
        variants = {row.variant for row in report.rows}
        assert "no-pivot-slots" in variants
        assert "no-availability-pruning" in variants
        distances = {round(row.total_distance, 6) for row in report.rows if row.feasible}
        assert len(distances) <= 1
