"""Unit tests for the measurement helpers and result reporting."""

import pytest

from repro.experiments import (
    FigureSeries,
    Measurement,
    SeriesPoint,
    format_quality_table,
    format_table,
    measure,
    speedup_summary,
    to_csv,
)


def make_series():
    series = FigureSeries(figure="1a", description="demo", sweep_name="p")
    for p, fast, slow in [(3, 0.001, 0.01), (4, 0.002, 0.08)]:
        point = SeriesPoint(sweep_value=p)
        point.measurements["SGSelect"] = Measurement(fast, fast, fast, 1)
        point.measurements["Baseline"] = Measurement(slow, slow, slow, 1)
        series.points.append(point)
    return series


class TestMeasure:
    def test_returns_result_and_statistics(self):
        measurement = measure(lambda: 41 + 1, repetitions=3)
        assert measurement.result == 42
        assert measurement.repetitions == 3
        assert measurement.seconds_min <= measurement.seconds_mean <= measurement.seconds_max
        assert measurement.milliseconds == pytest.approx(measurement.seconds_mean * 1e3)
        assert measurement.nanoseconds == pytest.approx(measurement.seconds_mean * 1e9)

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repetitions=0)


class TestFigureSeries:
    def test_algorithms_and_series(self):
        series = make_series()
        assert series.algorithms() == ["SGSelect", "Baseline"]
        assert series.series("SGSelect") == [0.001, 0.002]
        assert series.series("Missing") == [None, None]


class TestReporting:
    def test_format_table_contains_all_rows(self):
        text = format_table(make_series())
        assert "Figure 1a" in text
        assert "SGSelect" in text and "Baseline" in text
        assert "3" in text and "4" in text
        assert "ms" in text or "us" in text

    def test_format_table_handles_missing_measurements(self):
        series = make_series()
        series.points[0].measurements.pop("Baseline")
        text = format_table(series)
        assert "-" in text

    def test_quality_table(self):
        series = FigureSeries(figure="1g", description="quality", sweep_name="p")
        point = SeriesPoint(sweep_value=3)
        point.measurements["STGArrange"] = Measurement(0.1, 0.1, 0.1, 1)
        point.extra.update(
            {
                "pcarrange_feasible": True,
                "pcarrange_k": 2,
                "pcarrange_distance": 30.0,
                "stgarrange_feasible": True,
                "stgarrange_k": 1,
                "stgarrange_distance": 28.0,
            }
        )
        series.points.append(point)
        text = format_quality_table(series)
        assert "PCArrange k" in text
        assert "28.0" in text and "30.0" in text

    def test_quality_table_infeasible_pcarrange(self):
        series = FigureSeries(figure="1g", description="quality", sweep_name="p")
        point = SeriesPoint(sweep_value=9)
        point.extra.update({"pcarrange_feasible": False, "stgarrange_k": None})
        series.points.append(point)
        assert "infeasible" in format_quality_table(series)

    def test_to_csv(self):
        csv_text = to_csv(make_series())
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("figure,sweep_name,sweep_value,algorithm")
        assert len(lines) == 1 + 4  # two points x two algorithms

    def test_speedup_summary(self):
        summary = speedup_summary(make_series(), fast="SGSelect", slow="Baseline")
        assert summary[3] == pytest.approx(10.0)
        assert summary[4] == pytest.approx(40.0)

    def test_speedup_summary_missing_algorithm(self):
        assert speedup_summary(make_series(), fast="SGSelect", slow="Missing") == {}
