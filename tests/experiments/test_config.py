"""Unit tests for the experiment configuration."""

import pytest

from repro.experiments import FIGURE_IDS, ExperimentScale, figure_config


class TestFigureConfig:
    def test_every_figure_has_a_config(self):
        for figure in FIGURE_IDS:
            config = figure_config(figure)
            assert config.figure == figure
            assert len(config.sweep_values) >= 2
            assert config.description

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            figure_config("1z")

    def test_scales_nest(self):
        """Smoke sweeps are no longer than paper-shape, which are no longer
        than full-scale sweeps."""
        for figure in FIGURE_IDS:
            smoke = figure_config(figure, ExperimentScale.SMOKE)
            shape = figure_config(figure, ExperimentScale.PAPER_SHAPE)
            full = figure_config(figure, ExperimentScale.FULL)
            assert len(smoke.sweep_values) <= len(shape.sweep_values) <= len(full.sweep_values)

    def test_paper_parameters_preserved_in_notes(self):
        config = figure_config("1a")
        assert "k = 2" in config.notes and "s = 1" in config.notes

    def test_ip_only_in_figures_1a_and_1d(self):
        with_ip = {f for f in FIGURE_IDS if figure_config(f).include_ip}
        assert with_ip == {"1a", "1d"}

    def test_quality_panels_have_no_baseline(self):
        assert not figure_config("1g").include_baseline
        assert not figure_config("1h").include_baseline

    def test_figure_1d_sweeps_paper_network_sizes(self):
        config = figure_config("1d", ExperimentScale.FULL)
        assert tuple(config.sweep_values) == (194, 800, 3200, 12800)

    def test_accepts_fig_prefix(self):
        assert figure_config("fig1e").figure == "1e"
