"""Unit tests for the dataset builders."""


from repro.datasets import (
    NETWORK_SIZE_SWEEP,
    REAL_DATASET_SIZE,
    generate_coauthorship_dataset,
    generate_real_dataset,
    load_movie_network,
    load_toy_example,
)


class TestToyDatasets:
    def test_toy_structure(self):
        ds = load_toy_example()
        assert ds.graph.vertex_count == 6
        assert ds.graph.edge_count == 9
        assert ds.calendars.horizon == 7
        assert ds.metadata["initiator"] == "v7"

    def test_toy_schedules_match_figure(self):
        ds = load_toy_example()
        assert ds.calendars.get("v2").available_slots() == [1, 2, 3, 4, 5, 6, 7]
        assert ds.calendars.get("v3").available_slots() == [2, 3, 5, 6]
        assert ds.calendars.get("v7").available_slots() == [1, 2, 3, 4, 5, 6]
        assert ds.calendars.get("v8").available_slots() == [1, 3, 5, 6]

    def test_toy_distances_match_figure(self):
        ds = load_toy_example()
        assert ds.graph.distance("v7", "v2") == 17.0
        assert ds.graph.distance("v7", "v8") == 25.0

    def test_movie_network_structure(self):
        ds = load_movie_network()
        assert ds.graph.vertex_count == 8
        assert ds.graph.degree("casey_affleck") == 5
        assert ds.calendars.horizon == 6
        # The k = 0 clique of Example 1 must exist.
        assert ds.graph.has_edge("george_clooney", "brad_pitt")
        assert ds.graph.has_edge("george_clooney", "julia_roberts")
        assert ds.graph.has_edge("brad_pitt", "julia_roberts")
        # The three closest contacts must not be mutually acquainted.
        assert not ds.graph.has_edge("george_clooney", "robert_de_niro")
        assert not ds.graph.has_edge("george_clooney", "michelle_monaghan")
        assert not ds.graph.has_edge("robert_de_niro", "michelle_monaghan")

    def test_summaries(self):
        ds = load_toy_example()
        summary = ds.summary()
        assert summary["people"] == 6
        assert summary["friendships"] == 9
        assert summary["horizon_slots"] == 7


class TestRealDataset:
    def test_default_size_matches_paper(self):
        ds = generate_real_dataset(seed=1)
        assert ds.graph.vertex_count == REAL_DATASET_SIZE
        assert len(ds.calendars) == REAL_DATASET_SIZE
        assert ds.calendars.horizon == 48

    def test_schedule_days_scale_horizon(self):
        ds = generate_real_dataset(n_people=40, schedule_days=3, seed=1)
        assert ds.calendars.horizon == 3 * 48

    def test_deterministic_with_seed(self):
        a = generate_real_dataset(n_people=50, seed=9)
        b = generate_real_dataset(n_people=50, seed=9)
        assert a.graph == b.graph
        assert a.calendars.get(0) == b.calendars.get(0)

    def test_initiator_densified(self):
        ds = generate_real_dataset(n_people=100, seed=3, initiator_min_degree=14)
        assert ds.graph.degree(0) >= 14

    def test_initiator_candidates_helper(self):
        ds = generate_real_dataset(n_people=80, seed=3)
        candidates = ds.initiator_candidates(min_degree=5)
        assert all(ds.graph.degree(v) >= 5 for v in candidates)

    def test_metadata_summary(self):
        ds = generate_real_dataset(n_people=60, seed=3)
        assert ds.metadata["schedule_days"] == 1
        assert "average_degree" in ds.metadata


class TestCoauthorshipDataset:
    def test_small_instance(self):
        ds = generate_coauthorship_dataset(n_people=300, seed=5)
        assert ds.graph.vertex_count == 300
        assert len(ds.calendars) == 300
        assert ds.calendars.horizon == 48

    def test_network_size_sweep_constant(self):
        assert NETWORK_SIZE_SWEEP == (194, 800, 3200, 12800)

    def test_no_isolated_people(self):
        ds = generate_coauthorship_dataset(n_people=200, seed=6)
        assert all(ds.graph.degree(v) >= 1 for v in ds.graph)

    def test_multi_day_schedules(self):
        ds = generate_coauthorship_dataset(n_people=100, schedule_days=2, seed=6)
        assert ds.calendars.horizon == 96
