"""Unit tests for the dataset builders."""

import pytest


from repro.datasets import (
    NETWORK_SIZE_SWEEP,
    REAL_DATASET_SIZE,
    generate_coauthorship_dataset,
    generate_real_dataset,
    load_movie_network,
    load_toy_example,
)


class TestToyDatasets:
    def test_toy_structure(self):
        ds = load_toy_example()
        assert ds.graph.vertex_count == 6
        assert ds.graph.edge_count == 9
        assert ds.calendars.horizon == 7
        assert ds.metadata["initiator"] == "v7"

    def test_toy_schedules_match_figure(self):
        ds = load_toy_example()
        assert ds.calendars.get("v2").available_slots() == [1, 2, 3, 4, 5, 6, 7]
        assert ds.calendars.get("v3").available_slots() == [2, 3, 5, 6]
        assert ds.calendars.get("v7").available_slots() == [1, 2, 3, 4, 5, 6]
        assert ds.calendars.get("v8").available_slots() == [1, 3, 5, 6]

    def test_toy_distances_match_figure(self):
        ds = load_toy_example()
        assert ds.graph.distance("v7", "v2") == 17.0
        assert ds.graph.distance("v7", "v8") == 25.0

    def test_movie_network_structure(self):
        ds = load_movie_network()
        assert ds.graph.vertex_count == 8
        assert ds.graph.degree("casey_affleck") == 5
        assert ds.calendars.horizon == 6
        # The k = 0 clique of Example 1 must exist.
        assert ds.graph.has_edge("george_clooney", "brad_pitt")
        assert ds.graph.has_edge("george_clooney", "julia_roberts")
        assert ds.graph.has_edge("brad_pitt", "julia_roberts")
        # The three closest contacts must not be mutually acquainted.
        assert not ds.graph.has_edge("george_clooney", "robert_de_niro")
        assert not ds.graph.has_edge("george_clooney", "michelle_monaghan")
        assert not ds.graph.has_edge("robert_de_niro", "michelle_monaghan")

    def test_summaries(self):
        ds = load_toy_example()
        summary = ds.summary()
        assert summary["people"] == 6
        assert summary["friendships"] == 9
        assert summary["horizon_slots"] == 7


class TestRealDataset:
    def test_default_size_matches_paper(self):
        ds = generate_real_dataset(seed=1)
        assert ds.graph.vertex_count == REAL_DATASET_SIZE
        assert len(ds.calendars) == REAL_DATASET_SIZE
        assert ds.calendars.horizon == 48

    def test_schedule_days_scale_horizon(self):
        ds = generate_real_dataset(n_people=40, schedule_days=3, seed=1)
        assert ds.calendars.horizon == 3 * 48

    def test_deterministic_with_seed(self):
        a = generate_real_dataset(n_people=50, seed=9)
        b = generate_real_dataset(n_people=50, seed=9)
        assert a.graph == b.graph
        assert a.calendars.get(0) == b.calendars.get(0)

    def test_initiator_densified(self):
        ds = generate_real_dataset(n_people=100, seed=3, initiator_min_degree=14)
        assert ds.graph.degree(0) >= 14

    def test_initiator_candidates_helper(self):
        ds = generate_real_dataset(n_people=80, seed=3)
        candidates = ds.initiator_candidates(min_degree=5)
        assert all(ds.graph.degree(v) >= 5 for v in candidates)

    def test_metadata_summary(self):
        ds = generate_real_dataset(n_people=60, seed=3)
        assert ds.metadata["schedule_days"] == 1
        assert "average_degree" in ds.metadata


class TestCoauthorshipDataset:
    def test_small_instance(self):
        ds = generate_coauthorship_dataset(n_people=300, seed=5)
        assert ds.graph.vertex_count == 300
        assert len(ds.calendars) == 300
        assert ds.calendars.horizon == 48

    def test_network_size_sweep_constant(self):
        assert NETWORK_SIZE_SWEEP == (194, 800, 3200, 12800)

    def test_no_isolated_people(self):
        ds = generate_coauthorship_dataset(n_people=200, seed=6)
        assert all(ds.graph.degree(v) >= 1 for v in ds.graph)

    def test_multi_day_schedules(self):
        ds = generate_coauthorship_dataset(n_people=100, schedule_days=2, seed=6)
        assert ds.calendars.horizon == 96


class TestScaleDatasets:
    """Seeded scale generator + substrate-backed datasets (CSR required)."""

    @pytest.fixture(autouse=True)
    def _needs_numpy(self):
        from repro.graph import csr_available

        if not csr_available():
            pytest.skip("scale datasets need numpy")

    def test_generator_is_deterministic(self, tmp_path):
        from repro.datasets import generate_scale_graph
        from repro.graph.csr import pack_graph

        g1 = generate_scale_graph(2000, seed=7)
        g2 = generate_scale_graph(2000, seed=7)
        v1 = pack_graph(g1, tmp_path / "a.stgq").version
        v2 = pack_graph(g2, tmp_path / "b.stgq").version
        assert v1 == v2  # same seed, byte-identical substrate
        g3 = generate_scale_graph(2000, seed=8)
        assert pack_graph(g3, tmp_path / "c.stgq").version != v1

    def test_power_law_shape_and_initiator_floor(self):
        from repro.datasets import SCALE_INITIATOR, generate_scale_graph

        graph = generate_scale_graph(3000, mean_degree=6.0, seed=7)
        assert graph.vertex_count == 3000
        degrees = [graph.degree(v) for v in range(3000)]
        mean = sum(degrees) / len(degrees)
        assert 3.0 < mean <= 6.5  # dedup eats some draws, but not most
        assert graph.degree(SCALE_INITIATOR) >= 16
        # Hub at vertex 0: the low ids carry far more edges than the tail.
        head = sum(degrees[:30])
        tail = sum(degrees[-30:])
        assert head > 5 * tail

    def test_bad_parameters_rejected(self):
        from repro.datasets import generate_scale_graph
        from repro.exceptions import GraphError

        with pytest.raises(GraphError):
            generate_scale_graph(1)
        with pytest.raises(GraphError):
            generate_scale_graph(100, mean_degree=0)
        with pytest.raises(GraphError):
            generate_scale_graph(100, exponent=1.0)

    def test_dataset_metadata_and_lazy_calendars(self):
        from repro.datasets import SCALE_INITIATOR, generate_scale_dataset
        from repro.temporal import LazyCalendarStore

        ds = generate_scale_dataset(500, seed=9, schedule_days=2)
        assert ds.metadata["initiator"] == SCALE_INITIATOR
        assert ds.metadata["seed"] == 9
        assert ds.graph.vertex_count == 500
        assert isinstance(ds.calendars, LazyCalendarStore)
        assert len(ds.calendars) == 500
        assert ds.calendars.horizon == 2 * 48
        # Nothing materialised yet; one access materialises exactly one.
        assert len(ds.calendars._schedules) == 0
        ds.calendars.get(3)
        assert len(ds.calendars._schedules) == 1

    def test_schedules_deterministic_per_person(self):
        from repro.datasets import generate_scale_dataset

        a = generate_scale_dataset(300, seed=5)
        b = generate_scale_dataset(300, seed=5)
        for person in (0, 7, 299):
            assert a.calendars.get(person).available_slots() == b.calendars.get(person).available_slots()

    def test_dataset_from_substrate(self, tmp_path):
        from repro.datasets import dataset_from_substrate, generate_scale_graph
        from repro.graph.csr import pack_graph

        graph = generate_scale_graph(400, seed=7)
        path = tmp_path / "scale.stgq"
        version = pack_graph(graph, path).version
        ds = dataset_from_substrate(path, seed=7)
        assert ds.graph.vertex_count == 400
        assert ds.graph.path == str(path)
        assert ds.metadata["graph_path"] == str(path)
        assert ds.metadata["graph_version"] == version
        assert ds.metadata["initiator"] == 0
        assert len(ds.calendars) == 400

    def test_scale_query_end_to_end(self):
        from repro.core import STGQuery, STGSelect
        from repro.datasets import generate_scale_dataset

        ds = generate_scale_dataset(1500, seed=7)
        query = STGQuery(
            initiator=ds.metadata["initiator"], group_size=3, radius=2,
            acquaintance=1, activity_length=2,
        )
        result = STGSelect(ds.graph, ds.calendars).solve(query)
        if result.feasible:
            assert len(result.members) == 3
            assert ds.metadata["initiator"] in result.members
