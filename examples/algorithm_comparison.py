"""Compare every solver in the library on the same queries.

This example is a miniature version of the paper's evaluation: it runs
SGSelect, the exhaustive baseline and the Integer Programming model on the
same SGQ, then STGSelect and the per-period baseline on the same STGQ, and
prints running time, search statistics, and the (identical) optima.  It is
the quickest way to see why the branch-and-bound algorithms are the ones a
deployment would use.

Run with::

    python examples/algorithm_comparison.py
"""

import time

from repro.core import (
    BaselineSGQ,
    BaselineSTGQ,
    IPSolver,
    SGQuery,
    SGSelect,
    STGQuery,
    STGSelect,
)
from repro.datasets import generate_real_dataset
from repro.experiments import ego_size, pick_initiator


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - start
    return label, elapsed, result


def print_rows(rows):
    width = max(len(label) for label, _, _ in rows)
    for label, elapsed, result in rows:
        status = f"distance {result.total_distance:.1f}" if result.feasible else "infeasible"
        detail = ""
        if result.stats.nodes_expanded:
            detail = f", {result.stats.nodes_expanded} nodes/groups explored"
        print(f"  {label.ljust(width)}  {elapsed * 1e3:8.2f} ms   {status}{detail}")


def main() -> None:
    dataset = generate_real_dataset(seed=42)
    initiator = pick_initiator(dataset, radius=1, min_candidates=12, max_candidates=26)
    graph, calendars = dataset.graph, dataset.calendars
    print(f"workload: {dataset.name}, initiator {initiator} "
          f"with {ego_size(dataset, initiator, 1)} direct friends\n")

    # ------------------------------------------------------------------
    sg_query = SGQuery(initiator=initiator, group_size=6, radius=1, acquaintance=2)
    print(f"Social Group Query: {sg_query.describe()}")
    rows = [
        timed("SGSelect (branch & bound)", lambda: SGSelect(graph).solve(sg_query)),
        timed("Baseline (enumerate all groups)", lambda: BaselineSGQ(graph).solve(sg_query)),
        timed("Integer Programming (HiGHS)", lambda: IPSolver().solve_sgq(graph, sg_query)),
        timed(
            "Integer Programming (pure-Python B&B)",
            lambda: IPSolver(backend="branch-bound").solve_sgq(graph, sg_query),
        ),
    ]
    print_rows(rows)
    distances = {round(r.total_distance, 6) for _, _, r in rows if r.feasible}
    print(f"  -> all exact solvers agree: {len(distances) <= 1}\n")

    # ------------------------------------------------------------------
    stg_query = STGQuery(
        initiator=initiator, group_size=5, radius=1, acquaintance=2, activity_length=4
    )
    print(f"Social-Temporal Group Query: {stg_query.describe()}")
    rows = [
        timed("STGSelect (pivot slots)", lambda: STGSelect(graph, calendars).solve(stg_query)),
        timed(
            "Baseline (one SGQ per period)",
            lambda: BaselineSTGQ(graph, calendars).solve(stg_query),
        ),
        timed("Integer Programming (HiGHS)", lambda: IPSolver().solve_stgq(graph, calendars, stg_query)),
    ]
    print_rows(rows)
    distances = {round(r.total_distance, 6) for _, _, r in rows if r.feasible}
    print(f"  -> all exact solvers agree: {len(distances) <= 1}")
    best = rows[0][2]
    if best.feasible:
        print(f"  -> chosen period: slots {best.period.as_tuple()}, "
              f"pivot slot {best.pivot}")


if __name__ == "__main__":
    main()
