"""Batch serving demo: many users querying one shared social graph.

The single-query examples construct a solver per call; a deployed
activity-planning backend instead keeps one :class:`repro.service.QueryService`
alive next to the social graph and lets it amortise work across queries:
extracted ego networks (and their compiled bitset form) are LRU-cached per
``(initiator, radius)``, and batches fan out over an executor backend.

Scaling the service
-------------------
``QueryService(..., backend=...)`` picks the execution strategy:

* ``backend="thread"`` (default) — one shared ego-network cache, a thread
  pool per batch.  Cheap to start and fastest for cache-hot traffic, but the
  compiled kernel's popcount loops hold the GIL, so throughput saturates
  around one core no matter how many threads you add.
* ``backend="process"`` — the workload is *sharded by initiator* across
  persistent worker processes.  Each worker holds its own copy of the graph
  plus a private ego-network LRU cache, and every query routes to the worker
  owning its initiator, so each worker's cache stays hot for its shard of
  users.  This is the backend that scales solver-bound batches across cores
  (`stgq serve --backend process --workers 4`), at the cost of process
  startup and per-batch IPC.
* ``backend="serial"`` — the in-process loop, for debugging and baselines.
* ``backend=RemoteBackend(...)`` — the multi-node shape: the same sharding
  across ``stgq worker`` TCP processes.  See ``examples/cluster_quickstart.py``
  and ``docs/service.md``.

Whichever backend runs, ``stats()`` / ``cache_info()`` aggregate identically
(worker counters merge into the parent), and ``solve_many_async`` lets an
asyncio front-end pipeline batches — ``stgq serve --jsonl`` exposes that as
a stdin/stdout JSONL protocol.

Run with::

    PYTHONPATH=src python examples/batch_service.py
"""

import random
import time

from repro.core import SGQuery, STGQuery
from repro.datasets import generate_real_dataset
from repro.service import QueryService


def main() -> None:
    # 1. One shared dataset — the seeded 194-person community network.
    dataset = generate_real_dataset(seed=42)
    print(f"dataset: {dataset.graph.vertex_count} people, "
          f"{dataset.graph.edge_count} friendships, {dataset.calendars.horizon} slots")

    # 2. One long-lived service bound to it.  The default SearchParameters
    #    select the compiled bitset kernel; pass
    #    SearchParameters(kernel="reference") to compare with the pure-Python
    #    reference implementation.
    service = QueryService(dataset.graph, dataset.calendars, cache_size=64)

    # 3. Simulate traffic: 200 social queries from 12 active users.  Real
    #    products see exactly this shape — a small hot set of initiators
    #    issuing repeated queries with varying group sizes.
    rng = random.Random(7)
    hot_users = rng.sample(list(dataset.people), 12)
    social_batch = [
        SGQuery(initiator=rng.choice(hot_users), group_size=rng.randint(3, 6),
                radius=1, acquaintance=2)
        for _ in range(200)
    ]

    start = time.perf_counter()
    results = service.solve_many(social_batch)
    elapsed = time.perf_counter() - start
    feasible = sum(1 for r in results if r.feasible)
    print(f"\nSGQ batch: {len(results)} queries in {elapsed:.3f}s "
          f"({len(results) / elapsed:.0f} queries/s), {feasible} feasible")

    # 4. The same service answers social-temporal queries; the ego-network
    #    cache is shared across both query kinds.
    temporal_batch = [
        STGQuery(initiator=rng.choice(hot_users), group_size=4, radius=1,
                 acquaintance=2, activity_length=4)
        for _ in range(50)
    ]
    start = time.perf_counter()
    stg_results = service.solve_many(temporal_batch)
    elapsed = time.perf_counter() - start
    planned = [r for r in stg_results if r.feasible]
    print(f"STGQ batch: {len(stg_results)} queries in {elapsed:.3f}s "
          f"({len(stg_results) / elapsed:.0f} queries/s), {len(planned)} planned")
    if planned:
        sample = planned[0]
        print(f"  e.g. group {sample.sorted_members()} meeting in slots "
              f"{sample.period.as_tuple()}")

    # 5. Observability: the numbers a capacity planner needs.
    stats = service.stats()
    info = service.cache_info()
    print(f"\nservice stats: {stats.queries} queries "
          f"({stats.sg_queries} SGQ / {stats.stg_queries} STGQ), "
          f"{stats.solve_seconds:.3f}s solver time, "
          f"{stats.nodes_expanded} search nodes")
    print(f"ego-network cache: {info.hits} hits / {info.misses} misses "
          f"(hit rate {info.hit_rate:.0%}, {info.size}/{info.max_size} entries)")

    # 6. Scaling the service: the same traffic through the initiator-sharded
    #    process backend.  Each worker process owns a shard of the users —
    #    its own graph copy plus a private ego-network cache — so the
    #    GIL-bound kernel work runs on every core at once.  Results and
    #    aggregate stats are identical to the thread backend by contract
    #    (see tests/service/test_backends.py); only the wall clock changes.
    with QueryService(
        dataset.graph, dataset.calendars, cache_size=64, backend="process", max_workers=2
    ) as sharded:
        sharded.solve_many(social_batch)  # warm the worker caches
        start = time.perf_counter()
        sharded_results = sharded.solve_many(social_batch)
        elapsed = time.perf_counter() - start
        sharded_info = sharded.cache_info()
        print(f"\nprocess backend ({sharded.max_workers} workers): "
              f"{len(sharded_results)} queries in {elapsed:.3f}s "
              f"({len(sharded_results) / elapsed:.0f} queries/s, "
              f"hit rate {sharded_info.hit_rate:.0%})")
    assert [r.members for r in sharded_results] == [r.members for r in results]


if __name__ == "__main__":
    main()
