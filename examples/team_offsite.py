"""Planning a recurring team offsite over a full work week.

This example exercises the temporal side of the library harder than the
quickstart: a 7-day horizon of half-hour slots (336 slots), long activities
(half-day workshops), and a comparison of the exact planner against the
manual-coordination model (PCArrange) that the paper evaluates in its
quality study.

Run with::

    python examples/team_offsite.py
"""

from repro import ActivityPlanner
from repro.core import STGArrange, observed_acquaintance
from repro.datasets import generate_real_dataset
from repro.experiments import pick_initiator
from repro.temporal import slot_label


def describe_period(period) -> str:
    start, end = period.as_tuple()
    return f"slots {start}-{end} ({slot_label(start)} .. {slot_label(end)})"


def main() -> None:
    # A week of shared calendars for a 120-person organisation.
    dataset = generate_real_dataset(n_people=120, schedule_days=7, seed=7)
    organiser = pick_initiator(dataset, radius=1, min_candidates=10)
    planner = ActivityPlanner(dataset.graph, dataset.calendars)

    print(f"organisation: {dataset.graph.vertex_count} people, "
          f"{dataset.calendars.horizon} slots over 7 days")
    print(f"organiser: person {organiser} "
          f"({dataset.graph.degree(organiser)} direct collaborators)\n")

    # --- a sequence of workshops of increasing length --------------------
    for hours, label in [(2, "kick-off meeting"), (4, "half-day workshop"), (6, "strategy session")]:
        slots = hours * 2  # half-hour slots
        result = planner.find_group_and_time(
            initiator=organiser,
            group_size=6,
            activity_length=slots,
            radius=1,
            acquaintance=2,
        )
        print(f"{label} ({hours}h, p=6, k=2):")
        if result.feasible:
            print(f"  attendees: {result.sorted_members()}")
            print(f"  when: {describe_period(result.period)}")
            print(f"  total social distance: {result.total_distance:.1f}")
        else:
            print("  no common slot for six people — relaxing to five attendees")
            fallback = planner.find_group_and_time(
                initiator=organiser,
                group_size=5,
                activity_length=slots,
                radius=1,
                acquaintance=2,
            )
            if fallback.feasible:
                print(f"  attendees: {fallback.sorted_members()}")
                print(f"  when: {describe_period(fallback.period)}")
            else:
                print("  still infeasible — the week is too busy for this format")
        print()

    # --- automatic planning vs. coordinating by phone --------------------
    print("exact planner vs. manual coordination (PCArrange), 2h offsite, p=5:")
    outcome = STGArrange(dataset.graph, dataset.calendars).compare(
        initiator=organiser, group_size=5, radius=1, activity_length=4
    )
    if outcome.pcarrange.feasible:
        print(f"  manual coordination: distance {outcome.pcarrange.total_distance:.1f}, "
              f"observed k = {outcome.pcarrange_k}")
    else:
        print("  manual coordination failed to assemble five people")
    if outcome.stgarrange.feasible:
        print(f"  STGSelect (k = {outcome.stgarrange_k}): "
              f"distance {outcome.stgarrange.total_distance:.1f}")
        print(f"  when: {describe_period(outcome.stgarrange.period)}")
        members = outcome.stgarrange.members
        print(f"  mutual acquaintance of the chosen group: "
              f"k_h = {observed_acquaintance(dataset.graph, members)}")
    else:
        print("  no group satisfies the constraints at any k")


if __name__ == "__main__":
    main()
