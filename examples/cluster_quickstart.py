"""Cluster quickstart: 2 TCP workers + a gateway on one laptop.

The process backend scales the solver across cores; the **remote** backend
scales it across boxes.  This demo boots the smallest real cluster —
two ``stgq worker`` subprocesses on ephemeral localhost ports and a gateway
:class:`~repro.service.QueryService` using
:class:`~repro.service.net.RemoteBackend` — runs a seeded mixed SGQ/STGQ
batch through it, and *proves* the deployment contract: the cluster returns
byte-identical results and aggregate stats to a single-process serial
service on the same dataset.

CI runs this file as the cluster smoke test (it exits non-zero on any
divergence), so it stays a working recipe.

Run with::

    PYTHONPATH=src python examples/cluster_quickstart.py
"""

import time

from repro.experiments.workloads import generate_query_workload, workload
from repro.service import QueryService, RemoteBackend
from repro.service.net import start_local_workers

N_WORKERS = 2
N_QUERIES = 120
SEED = 42

#: Stats counters that must be identical whichever backend answered
#: (solve_seconds is wall-clock and legitimately differs).
DETERMINISTIC_COUNTERS = (
    "queries",
    "sg_queries",
    "stg_queries",
    "feasible",
    "infeasible",
    "cache_hits",
    "cache_misses",
    "nodes_expanded",
)


def main() -> None:
    # 1. One seeded dataset.  Workers load the same dataset from the same
    #    seed on startup — in a real deployment this is the shared graph
    #    snapshot every node serves.
    dataset = workload(network_size=194, schedule_days=1, seed=SEED)
    print(f"dataset: {dataset.graph.vertex_count} people, seed {SEED}")

    # 2. A skewed, mixed-radius workload: Zipfian initiators are what load
    #    shards unevenly, so they make the better smoke traffic too.
    batch = generate_query_workload(dataset, N_QUERIES, skew=0.8, seed=SEED)
    n_stg = sum(1 for query in batch if hasattr(query, "activity_length"))
    print(f"workload: {len(batch)} queries ({len(batch) - n_stg} SGQ + {n_stg} STGQ)")

    # 3. The single-process reference answer.
    with QueryService(dataset.graph, dataset.calendars, backend="serial") as reference:
        reference_results = reference.solve_many(batch)
        reference_stats = reference.stats().as_dict()

    # 4. Boot the cluster: two worker subprocesses (ephemeral ports), then a
    #    gateway whose RemoteBackend shards initiators across them with the
    #    same CRC32 ShardMap the process backend uses.
    print(f"\nbooting {N_WORKERS} workers ...")
    with start_local_workers(N_WORKERS, people=194, days=1, seed=SEED) as cluster:
        print(f"workers ready at {cluster.connect_spec()}")
        backend = RemoteBackend(cluster.connect_spec())
        with QueryService(dataset.graph, dataset.calendars, backend=backend) as gateway:
            start = time.perf_counter()
            results = gateway.solve_many(batch)
            elapsed = time.perf_counter() - start
            stats = gateway.stats().as_dict()
            info = gateway.cache_info()

        errors = [r for r in results if getattr(r, "error", None)]
        print(
            f"gateway answered {len(results)} queries in {elapsed:.2f}s "
            f"({len(results) / elapsed:.0f} q/s), {len(errors)} errors, "
            f"worker caches hold {info.size} ego networks"
        )

        # 5. The deployment contract: identical results AND identical merged
        #    aggregate stats.  This is what makes `--backend remote` a pure
        #    deployment decision rather than a semantics change.
        assert not errors, f"cluster degraded {len(errors)} requests: {errors[0].error}"
        for ours, theirs in zip(results, reference_results):
            assert ours.feasible == theirs.feasible, "feasibility diverged"
            assert ours.members == theirs.members, "group membership diverged"
            assert ours.total_distance == theirs.total_distance, "distance diverged"
        for counter in DETERMINISTIC_COUNTERS:
            assert stats[counter] == reference_stats[counter], (
                f"stats counter {counter} diverged: "
                f"{stats[counter]} != {reference_stats[counter]}"
            )
        print("cluster results and merged stats are identical to the serial backend ✓")
    print("workers terminated cleanly")


if __name__ == "__main__":
    main()
