"""HTTP smoke: 2 stateless gateways over a 2-worker TCP fleet.

The acceptance run for the HTTP gateway tier (``docs/http.md``), proving
the three contracts the subsystem makes on the smallest real topology:

* **Byte-identity** — a seeded Zipfian workload POSTed through either
  gateway returns results byte-identical to encoding a serial
  ``QueryService``'s answers with ``response_for``.  The HTTP tier adds
  envelopes, never a second result encoding.
* **Statelessness** — a paginated batch is walked with each page fetched
  from a *different* gateway: the base64url cursor carries everything, so
  any replica serves any page.
* **Load shedding + drain** — a deliberately tiny gateway
  (``--max-concurrency 1 --max-queue 0``) sheds concurrent traffic with
  429 + ``Retry-After`` instead of queueing unboundedly, and a SIGTERM
  mid-request drains: the in-flight request completes, the process exits 0,
  nothing accepted is dropped.

CI runs this file as the http smoke test (non-zero exit on any violation),
so it stays a working recipe.

Run with::

    PYTHONPATH=src python examples/http_smoke.py
"""

import json
import threading
import time
import urllib.error
import urllib.request

from repro.experiments.workloads import generate_query_workload, workload
from repro.service import QueryService
from repro.service.codec import request_for, response_for
from repro.service.http import start_local_gateways
from repro.service.net import start_local_workers

N_WORKERS = 2
N_GATEWAYS = 2
SEED = 42
WORKLOAD_SEED = 7
N_QUERIES = 80
SKEW = 1.1


def post(url, payload, timeout=60.0):
    """POST JSON; returns (status, decoded body, headers)."""
    request = urllib.request.Request(
        f"{url}/v1/queries",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as reply:
            return reply.status, json.loads(reply.read()), dict(reply.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def canonical(responses):
    return json.dumps(responses, sort_keys=True, separators=(",", ":"))


def main() -> None:
    dataset = workload(network_size=194, schedule_days=1, seed=SEED)
    queries = generate_query_workload(
        dataset, N_QUERIES, skew=SKEW, stg_fraction=0.3, seed=WORKLOAD_SEED
    )
    payloads = [request_for(query, request_id=i) for i, query in enumerate(queries)]
    print(f"workload: {len(queries)} Zipfian queries over {dataset.graph.vertex_count} people")

    # The reference answers: a serial in-process service on the same dataset.
    with QueryService(dataset.graph, dataset.calendars, backend="serial") as serial:
        expected = [
            response_for(i, result)
            for i, result in enumerate(serial.solve_many(queries))
        ]

    workers = start_local_workers(N_WORKERS, seed=SEED)
    try:
        print(f"workers:  {workers.connect_spec()}")
        gateways = start_local_gateways(
            N_GATEWAYS, connect=workers.connect_spec(), seed=SEED
        )
        try:
            print(f"gateways: {', '.join(gateways.urls)}")

            # 1. Byte-identity through each gateway independently.
            for url in gateways.urls:
                status, body, _ = post(url, {"queries": payloads, "page_size": 1024})
                assert status == 200, f"batch POST failed: {status} {body}"
                assert body["total"] == len(payloads)
                assert canonical(body["results"]) == canonical(expected), (
                    f"gateway {url} diverged from the serial service"
                )
            print(f"byte-identity: {len(payloads)} results identical via each gateway")

            # 2. Stateless pagination: walk the cursor across *alternating*
            # gateways; the reassembled pages must equal the full batch.
            collected, cursor, hop = [], None, 0
            while True:
                url = gateways.urls[hop % len(gateways.urls)]
                body_payload = {"queries": payloads, "page_size": 16}
                if cursor is not None:
                    body_payload["cursor"] = cursor
                status, body, _ = post(url, body_payload)
                assert status == 200, f"paginated POST failed: {status} {body}"
                collected.extend(body["results"])
                cursor = body["next_cursor"]
                hop += 1
                if cursor is None:
                    break
            assert canonical(collected) == canonical(expected), "paginated walk diverged"
            print(f"pagination: {hop} pages served by alternating gateways, identical")

            # 3. Health: both gateways see the whole fleet alive.
            for url in gateways.urls:
                with urllib.request.urlopen(f"{url}/health", timeout=10) as reply:
                    health = json.loads(reply.read())
                assert health["status"] == "ok", health
                assert [w["alive"] for w in health["workers"]] == [True] * N_WORKERS
            print("health: both gateways report the 2-worker fleet alive")
        finally:
            gateways.close()

        # 4. Induced overload: a one-slot, zero-queue gateway must shed
        # concurrent batches with 429 + Retry-After (never hang, never 5xx).
        tiny = start_local_gateways(
            1,
            connect=workers.connect_spec(),
            seed=SEED,
            max_concurrency=1,
            max_queue=0,
            extra_args=["--admit-timeout", "0.2"],
        )
        try:
            url = tiny.urls[0]
            outcomes = []
            heavy = {"queries": payloads}  # the full workload per request

            def fire():
                outcomes.append(post(url, heavy, timeout=120.0))

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(180)
            statuses = sorted(status for status, _, _ in outcomes)
            shed = [
                (body, headers)
                for status, body, headers in outcomes
                if status == 429
            ]
            served = [body for status, body, _ in outcomes if status == 200]
            assert shed, f"no request was shed under 6x overload (statuses: {statuses})"
            assert served, f"no request was served under overload (statuses: {statuses})"
            assert set(statuses) <= {200, 429}, f"unexpected statuses: {statuses}"
            for body, headers in shed:
                assert int(headers["Retry-After"]) >= 1, "429 without Retry-After"
                assert body["retry_after"] >= 1
            for body in served:
                assert canonical(body["results"]) == canonical(expected)
            print(
                f"load shedding: {len(served)} served + {len(shed)} shed with "
                f"Retry-After (of {len(outcomes)} concurrent)"
            )
        finally:
            tiny.close()

        # 5. SIGTERM drain: terminate a gateway with a request in flight;
        # the request must complete (zero dropped) and the process exit 0.
        drained = start_local_gateways(1, connect=workers.connect_spec(), seed=SEED)
        process = drained.processes[0]
        url = drained.urls[0]
        outcome = []
        client = threading.Thread(
            target=lambda: outcome.append(post(url, {"queries": payloads}, timeout=120.0))
        )
        client.start()
        time.sleep(0.05)  # let the request reach the gateway
        process.terminate()  # SIGTERM mid-request
        client.join(120)
        process.wait(60)
        drained.close()
        assert outcome, "client thread never completed"
        status, body, _ = outcome[0]
        assert status == 200, f"in-flight request dropped across SIGTERM: {status} {body}"
        assert canonical(body["results"]) == canonical(expected)
        assert process.returncode == 0, (
            f"drained gateway exited {process.returncode}, expected 0"
        )
        print("drain: SIGTERM mid-request answered in full, gateway exited 0")
    finally:
        workers.close()

    print("HTTP SMOKE PASSED")


if __name__ == "__main__":
    main()
