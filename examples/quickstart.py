"""Quickstart: plan an activity with the STGQ library in ~30 lines.

The scenario follows the paper's introduction: you have a handful of
complimentary movie tickets and want to invite a group of mutually
acquainted friends at a time everyone is free.

Run with::

    python examples/quickstart.py
"""

from repro import ActivityPlanner
from repro.datasets import generate_real_dataset
from repro.experiments import pick_initiator
from repro.temporal import slot_label


def main() -> None:
    # 1. Build a social network + shared calendars.  In an application these
    #    would come from your social graph and calendar service; here we use
    #    the seeded 194-person synthetic dataset that stands in for the
    #    paper's real dataset.
    dataset = generate_real_dataset(seed=42)
    print(f"dataset: {dataset.name} — {dataset.graph.vertex_count} people, "
          f"{dataset.graph.edge_count} friendships, {dataset.calendars.horizon} time slots")

    # 2. Pick an initiator (any person with enough friends works).
    initiator = pick_initiator(dataset, radius=1, min_candidates=8)
    print(f"initiator: person {initiator} with {dataset.graph.degree(initiator)} friends")

    planner = ActivityPlanner(dataset.graph, dataset.calendars)

    # 3. A Social Group Query (SGQ): five attendees, direct friends only
    #    (s = 1), everyone may be unacquainted with at most two others (k = 2).
    group = planner.find_group(initiator=initiator, group_size=5, radius=1, acquaintance=2)
    print("\nSGQ(p=5, s=1, k=2):")
    if group.feasible:
        print(f"  attendees: {group.sorted_members()}")
        print(f"  total social distance: {group.total_distance:.1f}")
    else:
        print("  no feasible group")

    # 4. A Social-Temporal Group Query (STGQ): the same group constraints plus
    #    a two-hour activity (four half-hour slots) everyone can attend.
    plan = planner.find_group_and_time(
        initiator=initiator, group_size=4, activity_length=4, radius=1, acquaintance=2
    )
    print("\nSTGQ(p=4, s=1, k=2, m=4):")
    if plan.feasible:
        print(f"  attendees: {plan.sorted_members()}")
        print(f"  total social distance: {plan.total_distance:.1f}")
        start, end = plan.period.as_tuple()
        print(f"  activity period: slots {start}-{end} "
              f"({slot_label(start)} .. {slot_label(end)})")
    else:
        print("  no feasible group and time — try a shorter activity or a larger k")


if __name__ == "__main__":
    main()
