"""Example 1 from the paper: Casey Affleck plans a movie discussion.

This script walks through the three queries of the paper's worked Example 1
on the Figure-2 celebrity network:

1. an unconstrained SGQ that returns the three *closest* friends — who turn
   out not to know each other,
2. the same query with the acquaintance constraint ``k = 0``, which returns
   a slightly farther but mutually acquainted trio,
3. a larger trip (six seats on a chartered plane) that loosens the social
   radius to friends-of-friends, and finally
4. the temporal version (STGQ) once it turns out the chosen six have no
   common free period of three slots.

Run with::

    python examples/movie_premiere.py
"""

from repro import ActivityPlanner
from repro.core import observed_acquaintance
from repro.datasets import MOVIE_INITIATOR, load_movie_network


def show(title, result, graph):
    print(f"\n{title}")
    if not result.feasible:
        print("  no feasible group")
        return
    names = ", ".join(sorted(m.replace("_", " ").title() for m in result.members))
    print(f"  attendees: {names}")
    print(f"  total social distance: {result.total_distance:.0f}")
    print(f"  observed acquaintance parameter k_h: {observed_acquaintance(graph, result.members)}")


def main() -> None:
    dataset = load_movie_network()
    planner = ActivityPlanner(dataset.graph, dataset.calendars)
    graph = dataset.graph

    print("Casey Affleck's social network "
          f"({graph.vertex_count} people, {graph.edge_count} ties)")

    # 1. Three closest friends, no acquaintance constraint: a "loose" group.
    loose = planner.find_group(
        initiator=MOVIE_INITIATOR, group_size=4, radius=1, acquaintance=3
    )
    show("SGQ(p=4, s=1, k unconstrained) — closest friends", loose, graph)

    # 2. The same size with k = 0: everyone must know everyone.
    tight = planner.find_group(
        initiator=MOVIE_INITIATOR, group_size=4, radius=1, acquaintance=0
    )
    show("SGQ(p=4, s=1, k=0) — mutually acquainted friends", tight, graph)

    # 3. Six seats, friends-of-friends allowed, at most two strangers each.
    plane = planner.find_group(
        initiator=MOVIE_INITIATOR, group_size=6, radius=2, acquaintance=2
    )
    show("SGQ(p=6, s=2, k=2) — the chartered-plane trip", plane, graph)

    # 4. The same trip with a required three-slot common period (STGQ).
    trip = planner.find_group_and_time(
        initiator=MOVIE_INITIATOR,
        group_size=6,
        activity_length=3,
        radius=2,
        acquaintance=2,
    )
    show("STGQ(p=6, s=2, k=2, m=3) — adding the schedules", trip, graph)
    if trip.feasible:
        print(f"  activity period: slots {trip.period.as_tuple()}")
    else:
        # The paper's Example 1 hits the same wall: the six socially optimal
        # attendees share no three consecutive free slots, so the temporal
        # query trades a little social distance for a workable time.
        relaxed = planner.find_group_and_time(
            initiator=MOVIE_INITIATOR,
            group_size=5,
            activity_length=3,
            radius=2,
            acquaintance=2,
        )
        show("STGQ(p=5, s=2, k=2, m=3) — one seat fewer", relaxed, graph)
        if relaxed.feasible:
            print(f"  activity period: slots {relaxed.period.as_tuple()}")


if __name__ == "__main__":
    main()
