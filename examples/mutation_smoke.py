"""Mutation smoke: live-graph deltas against a 2-worker TCP cluster.

The live-graph contract (``docs/live_graph.md``) has two halves and this
demo proves both on the smallest real cluster:

* **Correctness** — a seeded mutation trace is streamed batch-by-batch into
  a gateway whose :class:`~repro.service.net.RemoteBackend` distributes
  each batch to two ``stgq worker`` subprocesses as versioned delta frames.
  Between batches a query round runs through the cluster and is compared,
  result by result, against a *from-scratch rebuild*: a fresh serial
  service on the same seeded dataset with the same trace prefix applied.
  Any divergence — a stale cached ego, a missed invalidation, a worker at
  the wrong version — fails the run.
* **Targeted invalidation** — mutations must evict only the cached ego
  networks that contain a touched vertex, not nuke the caches.  The run
  asserts the fleet-wide evictions per mutation stay well under 10% of the
  per-worker cache size (a full clear per mutation would evict every warm
  entry, two orders of magnitude above this gate).

The query rounds use radius-1 egos deliberately: on a 194-person graph a
radius-2 ego covers most vertices, so most mutations would *legitimately*
evict most entries and the gate would measure the workload, not the
invalidation strategy.

CI runs this file as the mutation smoke test (it exits non-zero on any
divergence), so it stays a working recipe.

Run with::

    PYTHONPATH=src python examples/mutation_smoke.py
"""

import random
import time

from repro.core import SGQuery
from repro.datasets import generate_real_dataset
from repro.graph import generate_mutation_trace
from repro.service import QueryService, RemoteBackend
from repro.service.net import start_local_workers

N_WORKERS = 2
CACHE_SIZE = 64
SEED = 42
TRACE_SEED = 7
N_MUTATIONS = 24
MUTATIONS_PER_BATCH = 4
N_INITIATORS = 32


def canon(result):
    """The deterministic projection of a result (timings legitimately differ)."""
    return (result.feasible, result.members, result.total_distance)


def main() -> None:
    # 1. One seeded dataset; the workers rebuild the same one from the seed.
    dataset = generate_real_dataset(n_people=194, schedule_days=1, seed=SEED)
    print(f"dataset: {dataset.graph.vertex_count} people, seed {SEED}")

    # 2. A fixed query round (radius 1, see module docstring) plus a seeded
    #    mutation trace — same flags as `stgq mutate --count 24 --trace-seed 7`.
    initiators = random.Random(SEED).sample(list(dataset.people), N_INITIATORS)
    queries = [
        SGQuery(initiator=person, group_size=4, radius=1, acquaintance=2)
        for person in initiators
    ]
    trace = generate_mutation_trace(
        dataset.graph, N_MUTATIONS, seed=TRACE_SEED, horizon=dataset.calendars.horizon
    )
    kinds = {kind: sum(1 for m in trace if m.kind == kind) for kind in
             ("add_edge", "remove_edge", "update_availability")}
    print(f"trace: {len(trace)} mutations {kinds}, "
          f"{MUTATIONS_PER_BATCH} per distributed batch")

    def reference_results(prefix_length):
        """From-scratch rebuild: fresh dataset + trace prefix, serial backend."""
        ref_dataset = generate_real_dataset(n_people=194, schedule_days=1, seed=SEED)
        with QueryService(
            ref_dataset.graph, ref_dataset.calendars, backend="serial",
            cache_size=CACHE_SIZE,
        ) as ref:
            if prefix_length:
                ref.apply_mutations(trace[:prefix_length])
            return [canon(r) for r in ref.solve_many(queries)]

    # 3. Boot the cluster and interleave query rounds with mutation batches.
    print(f"\nbooting {N_WORKERS} workers (cache size {CACHE_SIZE}) ...")
    start_time = time.perf_counter()
    with start_local_workers(
        N_WORKERS, people=194, days=1, seed=SEED, cache_size=CACHE_SIZE
    ) as cluster:
        print(f"workers ready at {cluster.connect_spec()}")
        backend = RemoteBackend(cluster.connect_spec())
        with QueryService(
            dataset.graph, dataset.calendars, backend=backend, cache_size=CACHE_SIZE
        ) as gateway:
            worker_invalidations = 0
            mutations_applied = 0
            for offset in range(0, len(trace) + 1, MUTATIONS_PER_BATCH):
                live = [canon(r) for r in gateway.solve_many(queries)]
                expected = reference_results(offset)
                diverged = [
                    (query.initiator, ours, theirs)
                    for query, ours, theirs in zip(queries, live, expected)
                    if ours != theirs
                ]
                assert not diverged, (
                    f"cluster diverged from the from-scratch rebuild at version "
                    f"{gateway.live_version}: {diverged[:3]}"
                )
                if offset >= len(trace):
                    break
                report = gateway.apply_mutations(trace[offset : offset + MUTATIONS_PER_BATCH])
                worker_invalidations += report.worker_invalidations
                mutations_applied += report.mutations
                print(
                    f"  version {report.from_version} -> {report.to_version}: "
                    f"{report.worker_invalidations} worker egos evicted"
                )
            assert gateway.live_version == len(trace), (
                f"gateway at version {gateway.live_version}, trace has {len(trace)}"
            )
    elapsed = time.perf_counter() - start_time
    print(f"\n{mutations_applied} mutations applied, every query round identical "
          f"to its from-scratch rebuild ({elapsed:.1f}s) ✓")

    # 4. The invalidation gate: targeted eviction, not cache nukes.  The
    #    rounds keep the worker caches warm (N_INITIATORS egos across the
    #    fleet), so a full clear per mutation would evict every entry.
    assert mutations_applied == len(trace)
    assert worker_invalidations > 0, (
        "no worker egos were ever evicted: mutations are not reaching the "
        "workers' caches (warm caches + 24 edge mutations must touch some)"
    )
    per_mutation = worker_invalidations / mutations_applied
    gate = 0.1 * CACHE_SIZE
    print(f"targeted invalidation: {worker_invalidations} evictions / "
          f"{mutations_applied} mutations = {per_mutation:.2f} per mutation "
          f"(gate: < {gate:.1f})")
    assert per_mutation < gate, (
        f"invalidation is not targeted: {per_mutation:.2f} evictions per "
        f"mutation >= 10% of the {CACHE_SIZE}-entry cache"
    )
    print("invalidations per mutation ≪ cache size ✓")


if __name__ == "__main__":
    main()
